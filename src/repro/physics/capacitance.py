"""Constant-interaction capacitance model for gate-defined quantum dot arrays.

The model follows the standard electrostatic description of coupled quantum
dots (van der Wiel et al., Rev. Mod. Phys. 2002; Hanson et al., Rev. Mod.
Phys. 2007, which is reference [6] of the paper):

* ``Cdd`` — the ``n_dots x n_dots`` Maxwell capacitance matrix of the dots.
  Diagonal entries are the total capacitance of each dot (positive);
  off-diagonal entries are minus the mutual capacitance between dots
  (non-positive).
* ``Cdg`` — the ``n_dots x n_gates`` dot-gate capacitance matrix (non-negative
  entries).  Entry ``(i, j)`` is the capacitance between dot ``i`` and gate
  ``j``; the diagonal-ish entries (each dot to its own plunger) dominate while
  the off-diagonal entries encode the cross-capacitance that virtual gates
  must compensate.

From these two matrices the model provides:

* the electrostatic energy of an integer occupation vector at given gate
  voltages (used by :mod:`repro.physics.charge_state` to find ground states),
* the lever-arm matrix ``A = Cdd^-1 Cdg`` whose rows give how strongly each
  gate shifts each dot potential,
* analytic transition-line slopes and ground-truth virtualization coefficients
  for any pair of gates, which the evaluation uses as the reference the
  extraction algorithms are judged against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import CapacitanceModelError
from . import constants


def _as_matrix(values: np.ndarray | list, name: str) -> np.ndarray:
    matrix = np.asarray(values, dtype=float)
    if matrix.ndim != 2:
        raise CapacitanceModelError(f"{name} must be a 2-D array, got shape {matrix.shape}")
    if not np.all(np.isfinite(matrix)):
        raise CapacitanceModelError(f"{name} contains non-finite entries")
    return matrix


@dataclass(frozen=True)
class CapacitanceModel:
    """Electrostatic model of an ``n_dots``-dot, ``n_gates``-gate device.

    Parameters
    ----------
    dot_dot:
        Maxwell capacitance matrix ``Cdd`` in attofarads, shape
        ``(n_dots, n_dots)``.
    dot_gate:
        Dot-gate capacitance matrix ``Cdg`` in attofarads, shape
        ``(n_dots, n_gates)``.
    gate_names:
        Optional gate labels; defaults to ``["G0", "G1", ...]``.
    """

    dot_dot: np.ndarray
    dot_gate: np.ndarray
    gate_names: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        cdd = _as_matrix(self.dot_dot, "dot_dot")
        cdg = _as_matrix(self.dot_gate, "dot_gate")
        if cdd.shape[0] != cdd.shape[1]:
            raise CapacitanceModelError(
                f"dot_dot must be square, got shape {cdd.shape}"
            )
        if cdg.shape[0] != cdd.shape[0]:
            raise CapacitanceModelError(
                "dot_gate must have one row per dot: "
                f"dot_dot has {cdd.shape[0]} dots but dot_gate has {cdg.shape[0]} rows"
            )
        if not np.allclose(cdd, cdd.T, atol=1e-9):
            raise CapacitanceModelError("dot_dot (Maxwell matrix) must be symmetric")
        if np.any(np.diag(cdd) <= 0):
            raise CapacitanceModelError("dot_dot diagonal (total capacitances) must be positive")
        off_diag = cdd - np.diag(np.diag(cdd))
        if np.any(off_diag > 1e-12):
            raise CapacitanceModelError(
                "dot_dot off-diagonal entries (negative mutual capacitances) must be <= 0"
            )
        if np.any(cdg < -1e-12):
            raise CapacitanceModelError("dot_gate entries must be non-negative")
        # Maxwell matrices of physical capacitor networks are diagonally
        # dominant and therefore positive definite.
        try:
            np.linalg.cholesky(cdd)
        except np.linalg.LinAlgError as exc:
            raise CapacitanceModelError(
                "dot_dot must be positive definite (it is the Maxwell matrix of a "
                "physical capacitor network)"
            ) from exc
        object.__setattr__(self, "dot_dot", cdd)
        object.__setattr__(self, "dot_gate", cdg)
        names = tuple(self.gate_names) if self.gate_names else tuple(
            f"G{i}" for i in range(cdg.shape[1])
        )
        if len(names) != cdg.shape[1]:
            raise CapacitanceModelError(
                f"expected {cdg.shape[1]} gate names, got {len(names)}"
            )
        object.__setattr__(self, "gate_names", names)

    # ------------------------------------------------------------------
    # Basic shape / derived matrices
    # ------------------------------------------------------------------
    @property
    def n_dots(self) -> int:
        """Number of dots in the model."""
        return self.dot_dot.shape[0]

    @property
    def n_gates(self) -> int:
        """Number of gates in the model."""
        return self.dot_gate.shape[1]

    @property
    def inverse_dot_dot(self) -> np.ndarray:
        """Inverse of the Maxwell matrix, ``Cdd^-1`` (1/aF)."""
        return np.linalg.inv(self.dot_dot)

    @property
    def lever_arm_matrix(self) -> np.ndarray:
        """Dimensionless lever-arm matrix ``A = Cdd^-1 Cdg``.

        ``A[i, j]`` is the fraction of gate ``j``'s voltage that appears as an
        electrostatic potential shift on dot ``i``.  Rows of ``A`` define the
        orientation of the charge-transition lines in gate-voltage space.
        """
        return self.inverse_dot_dot @ self.dot_gate

    def gate_index(self, gate: int | str) -> int:
        """Resolve a gate given either its integer index or its name."""
        if isinstance(gate, str):
            try:
                return self.gate_names.index(gate)
            except ValueError as exc:
                raise CapacitanceModelError(
                    f"unknown gate name {gate!r}; known gates: {self.gate_names}"
                ) from exc
        index = int(gate)
        if not 0 <= index < self.n_gates:
            raise CapacitanceModelError(
                f"gate index {index} out of range for {self.n_gates} gates"
            )
        return index

    # ------------------------------------------------------------------
    # Energies
    # ------------------------------------------------------------------
    def charging_energies_mev(self) -> np.ndarray:
        """Per-dot charging energies ``e^2 (Cdd^-1)_ii`` in meV."""
        return np.diag(self.inverse_dot_dot) * constants.E_SQUARED_OVER_AF_IN_MEV

    def mutual_charging_energies_mev(self) -> np.ndarray:
        """Matrix of mutual charging energies ``e^2 (Cdd^-1)_ij`` in meV."""
        return self.inverse_dot_dot * constants.E_SQUARED_OVER_AF_IN_MEV

    def electrostatic_energy(
        self, occupations: np.ndarray | list, gate_voltages: np.ndarray | list
    ) -> float:
        """Total electrostatic energy (meV) of an occupation at gate voltages.

        The constant-interaction energy is

            U(n, Vg) = (1/2) (e n - Cdg Vg)^T Cdd^-1 (e n - Cdg Vg)

        expressed here in meV with charge in units of ``e`` and capacitance in
        aF.  Only energy *differences* between occupations matter for charge
        stability, so the gauge-dependent constant is kept as-is.

        Parameters
        ----------
        occupations:
            Integer electron numbers per dot, shape ``(n_dots,)``.
        gate_voltages:
            Gate voltages in volts, shape ``(n_gates,)``.
        """
        n = np.asarray(occupations, dtype=float)
        vg = np.asarray(gate_voltages, dtype=float)
        if n.shape != (self.n_dots,):
            raise CapacitanceModelError(
                f"occupations must have shape ({self.n_dots},), got {n.shape}"
            )
        if vg.shape != (self.n_gates,):
            raise CapacitanceModelError(
                f"gate_voltages must have shape ({self.n_gates},), got {vg.shape}"
            )
        # Charge imbalance on each dot in units of e:  n - (Cdg Vg) / e
        induced = (self.dot_gate @ vg) / constants.ELEMENTARY_CHARGE_AF_V
        q = n - induced
        energy_e2_per_af = 0.5 * q @ self.inverse_dot_dot @ q
        return float(energy_e2_per_af * constants.E_SQUARED_OVER_AF_IN_MEV)

    def chemical_potential(
        self,
        dot: int,
        occupations: np.ndarray | list,
        gate_voltages: np.ndarray | list,
    ) -> float:
        """Chemical potential (meV) for adding one electron to ``dot``.

        Defined as ``mu_i(n) = U(n + e_i) - U(n)``; the ``(n) -> (n + e_i)``
        transition line is the locus ``mu_i = 0`` (at zero bias and zero
        temperature).
        """
        n = np.asarray(occupations, dtype=float)
        if not 0 <= dot < self.n_dots:
            raise CapacitanceModelError(f"dot index {dot} out of range")
        n_plus = n.copy()
        n_plus[dot] += 1
        return self.electrostatic_energy(n_plus, gate_voltages) - self.electrostatic_energy(
            n, gate_voltages
        )

    # ------------------------------------------------------------------
    # Transition-line geometry / ground-truth virtual gates
    # ------------------------------------------------------------------
    def pair_lever_arms(self, dot_a: int, dot_b: int, gate_x: int | str, gate_y: int | str) -> np.ndarray:
        """2x2 lever-arm block for two dots and two swept gates.

        Returns ``A_pair`` with ``A_pair[0] = (dA/dVx, dA/dVy)`` for ``dot_a``
        and ``A_pair[1]`` likewise for ``dot_b``, where ``Vx`` is the gate on
        the CSD x-axis and ``Vy`` the gate on the y-axis.
        """
        gx = self.gate_index(gate_x)
        gy = self.gate_index(gate_y)
        lever = self.lever_arm_matrix
        return np.array(
            [
                [lever[dot_a, gx], lever[dot_a, gy]],
                [lever[dot_b, gx], lever[dot_b, gy]],
            ]
        )

    def transition_slopes(
        self, dot_a: int, dot_b: int, gate_x: int | str, gate_y: int | str
    ) -> tuple[float, float]:
        """Analytic slopes ``(m_steep, m_shallow)`` of the two addition lines.

        The slopes are ``dVy/dVx`` of the ``dot_a`` addition line (steep,
        crossed when the x-axis gate is increased) and of the ``dot_b``
        addition line (shallow), following the convention of DESIGN.md §2.
        Both are negative for physical (non-negative) cross capacitances.
        """
        pair = self.pair_lever_arms(dot_a, dot_b, gate_x, gate_y)
        if pair[0, 1] <= 0 or pair[1, 1] <= 0 or pair[0, 0] <= 0 or pair[1, 0] <= 0:
            raise CapacitanceModelError(
                "transition slopes require strictly positive lever arms between the "
                "swept gates and both dots; add a small cross capacitance instead of zero"
            )
        m_steep = -pair[0, 0] / pair[0, 1]
        m_shallow = -pair[1, 0] / pair[1, 1]
        return float(m_steep), float(m_shallow)

    def virtualization_alphas(
        self, dot_a: int, dot_b: int, gate_x: int | str, gate_y: int | str
    ) -> tuple[float, float]:
        """Ground-truth ``(alpha_12, alpha_21)`` for the swept gate pair.

        ``alpha_12`` compensates the effect of the y-axis gate on ``dot_a``
        (whose plunger is the x-axis gate) and ``alpha_21`` the effect of the
        x-axis gate on ``dot_b``:

            V'_x = V_x + alpha_12 V_y,    alpha_12 = A[dot_a, gy] / A[dot_a, gx]
            V'_y = alpha_21 V_x + V_y,    alpha_21 = A[dot_b, gx] / A[dot_b, gy]
        """
        pair = self.pair_lever_arms(dot_a, dot_b, gate_x, gate_y)
        if pair[0, 0] <= 0 or pair[1, 1] <= 0:
            raise CapacitanceModelError(
                "each dot must couple to its own plunger gate with positive lever arm"
            )
        alpha_12 = pair[0, 1] / pair[0, 0]
        alpha_21 = pair[1, 0] / pair[1, 1]
        return float(alpha_12), float(alpha_21)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def double_dot(
        cls,
        charging_energy_mev: tuple[float, float] = (3.0, 3.0),
        mutual_fraction: float = 0.15,
        plunger_lever_arms: tuple[float, float] = (0.10, 0.10),
        cross_lever_fractions: tuple[float, float] = (0.25, 0.25),
        gate_names: tuple[str, str] = ("P1", "P2"),
    ) -> "CapacitanceModel":
        """Build a two-dot, two-plunger model from experiment-style numbers.

        Parameters
        ----------
        charging_energy_mev:
            Charging energy of each dot, meV.  Sets the total capacitances.
        mutual_fraction:
            Mutual dot-dot capacitance as a fraction of the smaller total
            capacitance (0 <= fraction < 0.5 keeps the matrix well conditioned).
        plunger_lever_arms:
            Approximate lever arm of each dot's own plunger gate.
        cross_lever_fractions:
            Cross-coupling strengths: fraction of dot *i*'s plunger capacitance
            that the *other* plunger also presents to dot *i*.  These fractions
            are what virtual gates compensate; typical devices sit in 0.1-0.5.
        gate_names:
            Names of the two plunger gates.
        """
        ec1, ec2 = charging_energy_mev
        if ec1 <= 0 or ec2 <= 0:
            raise CapacitanceModelError("charging energies must be positive")
        if not 0 <= mutual_fraction < 0.5:
            raise CapacitanceModelError("mutual_fraction must be in [0, 0.5)")
        c1 = constants.E_SQUARED_OVER_AF_IN_MEV / ec1
        c2 = constants.E_SQUARED_OVER_AF_IN_MEV / ec2
        cm = mutual_fraction * min(c1, c2)
        cdd = np.array([[c1, -cm], [-cm, c2]])
        a1, a2 = plunger_lever_arms
        x12, x21 = cross_lever_fractions
        if not (0 < a1 < 1 and 0 < a2 < 1):
            raise CapacitanceModelError("plunger lever arms must lie in (0, 1)")
        if not (0 <= x12 < 1 and 0 <= x21 < 1):
            raise CapacitanceModelError("cross lever fractions must lie in [0, 1)")
        cg11 = a1 * c1
        cg22 = a2 * c2
        cdg = np.array([[cg11, x12 * cg11], [x21 * cg22, cg22]])
        return cls(dot_dot=cdd, dot_gate=cdg, gate_names=gate_names)

    @classmethod
    def linear_array(
        cls,
        n_dots: int,
        charging_energy_mev: float = 3.0,
        mutual_fraction: float = 0.12,
        plunger_lever_arm: float = 0.10,
        nearest_cross_fraction: float = 0.25,
        next_nearest_cross_fraction: float = 0.05,
        gate_prefix: str = "P",
    ) -> "CapacitanceModel":
        """Build an ``n_dots`` linear array with one plunger gate per dot.

        Cross capacitances decay with distance: each plunger couples to its own
        dot, to nearest-neighbour dots with ``nearest_cross_fraction`` of the
        plunger capacitance, and to next-nearest neighbours with
        ``next_nearest_cross_fraction``.  This mirrors the quadruple-dot layout
        of the paper's Figure 1.
        """
        if n_dots < 1:
            raise CapacitanceModelError("n_dots must be at least 1")
        if charging_energy_mev <= 0:
            raise CapacitanceModelError("charging energy must be positive")
        c_total = constants.E_SQUARED_OVER_AF_IN_MEV / charging_energy_mev
        cm = mutual_fraction * c_total
        cdd = np.zeros((n_dots, n_dots))
        for i in range(n_dots):
            cdd[i, i] = c_total
            if i + 1 < n_dots:
                cdd[i, i + 1] = -cm
                cdd[i + 1, i] = -cm
        cg = plunger_lever_arm * c_total
        cdg = np.zeros((n_dots, n_dots))
        for i in range(n_dots):
            for j in range(n_dots):
                distance = abs(i - j)
                if distance == 0:
                    cdg[i, j] = cg
                elif distance == 1:
                    cdg[i, j] = nearest_cross_fraction * cg
                elif distance == 2:
                    cdg[i, j] = next_nearest_cross_fraction * cg
        names = tuple(f"{gate_prefix}{i + 1}" for i in range(n_dots))
        return cls(dot_dot=cdd, dot_gate=cdg, gate_names=names)

    @classmethod
    def grid_lattice(
        cls,
        rows: int,
        cols: int,
        charging_energy_mev: float = 3.0,
        mutual_fraction: float = 0.12,
        plunger_lever_arm: float = 0.10,
        nearest_cross_fraction: float = 0.25,
        next_nearest_cross_fraction: float = 0.05,
        gate_prefix: str = "P",
    ) -> "CapacitanceModel":
        """Build a ``rows x cols`` 2-D lattice with one plunger gate per dot.

        Dots are indexed row-major (dot ``r * cols + c`` sits at lattice site
        ``(r, c)``); mutual capacitance couples 4-connected neighbours, and
        plunger cross-capacitance decays with Manhattan distance exactly as
        :meth:`linear_array` decays it with chain distance — a linear array
        is the ``rows == 1`` special case.
        """
        if rows < 1 or cols < 1:
            raise CapacitanceModelError("grid_lattice needs rows >= 1 and cols >= 1")
        if charging_energy_mev <= 0:
            raise CapacitanceModelError("charging energy must be positive")
        n_dots = rows * cols
        c_total = constants.E_SQUARED_OVER_AF_IN_MEV / charging_energy_mev
        cm = mutual_fraction * c_total
        sites = [(i // cols, i % cols) for i in range(n_dots)]
        cdd = np.zeros((n_dots, n_dots))
        cg = plunger_lever_arm * c_total
        cdg = np.zeros((n_dots, n_dots))
        for i, (ri, ci) in enumerate(sites):
            cdd[i, i] = c_total
            cdg[i, i] = cg
            for j, (rj, cj) in enumerate(sites):
                distance = abs(ri - rj) + abs(ci - cj)
                if distance == 1:
                    cdd[i, j] = -cm
                    cdg[i, j] = nearest_cross_fraction * cg
                elif distance == 2:
                    cdg[i, j] = next_nearest_cross_fraction * cg
        names = tuple(f"{gate_prefix}{i + 1}" for i in range(n_dots))
        return cls(dot_dot=cdd, dot_gate=cdg, gate_names=names)
