"""Device-level model: gate layout plus electrostatics plus charge sensing.

:class:`DotArrayDevice` bundles everything the rest of the library needs to
pretend a silicon quantum dot chip is connected:

* a :class:`~repro.physics.capacitance.CapacitanceModel` describing the
  electrostatics of the dots and plunger gates,
* a :class:`~repro.physics.charge_state.ChargeStateSolver` that finds the
  ground-state charge configuration at any gate-voltage point,
* a :class:`~repro.physics.sensor.ChargeSensor` that converts charge
  configurations into the measured sensor current,
* gate metadata (names, allowed voltage ranges).

Factory methods build the double-dot device used throughout the evaluation and
a quadruple-dot device mirroring the paper's Figure 1 for the n-dot array
extension.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DeviceModelError
from .capacitance import CapacitanceModel
from .charge_state import ChargeState, ChargeStateSolver
from .sensor import ChargeSensor, ChargeSensorConfig


@dataclass(frozen=True)
class GateSpec:
    """Metadata for one plunger gate: its name and safe voltage range."""

    name: str
    min_voltage: float = 0.0
    max_voltage: float = 1.0

    def __post_init__(self) -> None:
        if self.max_voltage <= self.min_voltage:
            raise DeviceModelError(
                f"gate {self.name!r}: max_voltage must exceed min_voltage"
            )

    def clamp(self, voltage: float) -> float:
        """Clamp a requested voltage into the safe range."""
        return float(min(max(voltage, self.min_voltage), self.max_voltage))

    def contains(self, voltage: float) -> bool:
        """Whether a voltage lies inside the safe range (inclusive)."""
        return self.min_voltage <= voltage <= self.max_voltage


class DotArrayDevice:
    """A simulated gate-defined quantum dot array with a charge sensor."""

    def __init__(
        self,
        capacitance: CapacitanceModel,
        sensor: ChargeSensor | None = None,
        gate_specs: tuple[GateSpec, ...] | None = None,
        max_electrons_per_dot: int = 3,
        name: str = "device",
        adjacency: tuple[tuple[int, int], ...] | None = None,
    ) -> None:
        self._capacitance = capacitance
        self._solver = ChargeStateSolver(
            capacitance, max_electrons_per_dot=max_electrons_per_dot
        )
        self._sensor = sensor or ChargeSensor.with_sensitivity(
            n_dots=capacitance.n_dots, n_gates=capacitance.n_gates
        )
        # Catch sensor/device size mismatches at construction rather than
        # deep inside a measurement: a sensor coupled to more dots or gates
        # than the device has cannot be evaluated.
        sensor_config = self._sensor.config
        if len(sensor_config.dot_shift_mv) > capacitance.n_dots:
            raise DeviceModelError(
                f"sensor couples to {len(sensor_config.dot_shift_mv)} dots but "
                f"the device has only {capacitance.n_dots}"
            )
        if len(sensor_config.gate_crosstalk_mv_per_v) > capacitance.n_gates:
            raise DeviceModelError(
                f"sensor crosstalk covers {len(sensor_config.gate_crosstalk_mv_per_v)} "
                f"gates but the device has only {capacitance.n_gates}"
            )
        if gate_specs is None:
            gate_specs = tuple(
                GateSpec(name=gate_name) for gate_name in capacitance.gate_names
            )
        if len(gate_specs) != capacitance.n_gates:
            raise DeviceModelError(
                f"expected {capacitance.n_gates} gate specs, got {len(gate_specs)}"
            )
        self._gate_specs = tuple(gate_specs)
        self._name = name
        if adjacency is not None:
            edges = tuple((int(a), int(b)) for a, b in adjacency)
            for a, b in edges:
                if not (0 <= a < capacitance.n_dots and 0 <= b < capacitance.n_dots):
                    raise DeviceModelError(
                        f"adjacency edge ({a}, {b}) references a dot outside "
                        f"0..{capacitance.n_dots - 1}"
                    )
                if a >= b:
                    raise DeviceModelError(
                        f"adjacency edges must be ordered pairs (a < b), got ({a}, {b})"
                    )
            if len(set(edges)) != len(edges):
                raise DeviceModelError("adjacency must not repeat edges")
            adjacency = edges
        self._adjacency = adjacency

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Human-readable device name."""
        return self._name

    @property
    def capacitance(self) -> CapacitanceModel:
        """The electrostatic model."""
        return self._capacitance

    @property
    def solver(self) -> ChargeStateSolver:
        """The ground-state solver."""
        return self._solver

    @property
    def sensor(self) -> ChargeSensor:
        """The charge sensor."""
        return self._sensor

    @property
    def n_dots(self) -> int:
        """Number of dots."""
        return self._capacitance.n_dots

    @property
    def n_gates(self) -> int:
        """Number of plunger gates."""
        return self._capacitance.n_gates

    @property
    def gate_names(self) -> tuple[str, ...]:
        """Names of the plunger gates."""
        return self._capacitance.gate_names

    @property
    def gate_specs(self) -> tuple[GateSpec, ...]:
        """Voltage-range metadata per gate."""
        return self._gate_specs

    def gate_index(self, gate: int | str) -> int:
        """Resolve a gate by index or name."""
        return self._capacitance.gate_index(gate)

    @property
    def adjacency(self) -> tuple[tuple[int, int], ...] | None:
        """Explicit dot-adjacency edges, or ``None`` for the linear chain."""
        return self._adjacency

    def neighbour_pairs(self) -> tuple[tuple[int, int, str, str], ...]:
        """``(dot_a, dot_b, gate_x, gate_y)`` for every neighbouring pair.

        The pairwise virtual gate procedure (paper §2.3) visits exactly
        one pair per adjacency edge; the array extractor and the campaign
        grid both enumerate them through this single helper.  Devices built
        without an explicit ``adjacency`` (every linear array) use the
        chain ``(i, i + 1)`` edges; 2-D lattices supply their 4-connected
        edge list so the procedure walks real neighbours instead of
        pairing a row's last dot with the next row's first.
        """
        plungers = self.gate_names[: self.n_dots]
        edges = (
            self._adjacency
            if self._adjacency is not None
            else tuple((i, i + 1) for i in range(self.n_dots - 1))
        )
        return tuple((a, b, plungers[a], plungers[b]) for a, b in edges)

    # ------------------------------------------------------------------
    # Physics queries
    # ------------------------------------------------------------------
    def charge_state(self, gate_voltages: np.ndarray | list) -> ChargeState:
        """Ground-state charge configuration at the given gate voltages."""
        vg = self._validated_voltages(gate_voltages)
        return self._solver.ground_state(vg)

    def sensor_current(
        self,
        gate_voltages: np.ndarray | list,
        occupations: np.ndarray | list | None = None,
    ) -> float:
        """Noise-free sensor current (nA) at the given gate voltages.

        If ``occupations`` is given it is used directly (useful when the
        caller already solved the ground state); otherwise the ground state is
        computed first.
        """
        vg = self._validated_voltages(gate_voltages)
        if occupations is None:
            occupations = self._solver.ground_state(vg).occupations
        return self._sensor.current(occupations, vg)

    def sensor_currents(
        self,
        gate_voltage_points: np.ndarray,
        occupations: np.ndarray | None = None,
        detuning_offset_mv: np.ndarray | float = 0.0,
    ) -> np.ndarray:
        """Vectorised :meth:`sensor_current` over a batch of voltage points.

        Solves all ground states through the solver's batched lattice kernel
        and converts them to currents in one vectorised sensor evaluation —
        the physics core of the instrument layer's batch probe path.

        Parameters
        ----------
        gate_voltage_points:
            Gate-voltage points, shape ``(n_points, n_gates)``.
        occupations:
            Optional pre-solved occupations, shape ``(n_points, n_dots)``;
            computed from the ground states when omitted.
        detuning_offset_mv:
            Extra sensor detuning per point (scalar or ``(n_points,)``);
            drift-aware backends use it to move the sensor operating point
            as a function of probe time.

        Returns
        -------
        numpy.ndarray
            Noise-free sensor currents in nA, shape ``(n_points,)``.
        """
        points = np.asarray(gate_voltage_points, dtype=float)
        if points.ndim != 2 or points.shape[1] != self.n_gates:
            raise DeviceModelError(
                f"expected voltage points of shape (n, {self.n_gates}), "
                f"got {points.shape}"
            )
        if occupations is None:
            occupations = self._solver.occupations_at(points)
        return self._sensor.currents(
            np.asarray(occupations, dtype=float),
            points,
            detuning_offset_mv=detuning_offset_mv,
        )

    def ground_truth_alphas(
        self, dot_a: int, dot_b: int, gate_x: int | str, gate_y: int | str
    ) -> tuple[float, float]:
        """Ground-truth virtualization coefficients for a swept gate pair."""
        return self._capacitance.virtualization_alphas(dot_a, dot_b, gate_x, gate_y)

    def ground_truth_slopes(
        self, dot_a: int, dot_b: int, gate_x: int | str, gate_y: int | str
    ) -> tuple[float, float]:
        """Ground-truth (steep, shallow) transition-line slopes for a pair."""
        return self._capacitance.transition_slopes(dot_a, dot_b, gate_x, gate_y)

    def _validated_voltages(self, gate_voltages: np.ndarray | list) -> np.ndarray:
        vg = np.asarray(gate_voltages, dtype=float)
        if vg.shape != (self.n_gates,):
            raise DeviceModelError(
                f"expected {self.n_gates} gate voltages, got shape {vg.shape}"
            )
        return vg

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def double_dot(
        cls,
        cross_coupling: tuple[float, float] = (0.25, 0.22),
        charging_energy_mev: tuple[float, float] = (3.2, 2.9),
        mutual_fraction: float = 0.15,
        plunger_lever_arms: tuple[float, float] = (0.10, 0.11),
        sensor_config: ChargeSensorConfig | None = None,
        voltage_range: tuple[float, float] = (0.0, 1.0),
        name: str = "double-dot",
    ) -> "DotArrayDevice":
        """A double quantum dot with two plunger gates (paper's Figure 2/3).

        ``cross_coupling`` are the fractions of each plunger's capacitance seen
        by the *other* dot — these are exactly the quantities the
        virtualization matrix must learn.
        """
        capacitance = CapacitanceModel.double_dot(
            charging_energy_mev=charging_energy_mev,
            mutual_fraction=mutual_fraction,
            plunger_lever_arms=plunger_lever_arms,
            cross_lever_fractions=cross_coupling,
            gate_names=("P1", "P2"),
        )
        sensor = (
            ChargeSensor(sensor_config)
            if sensor_config is not None
            else ChargeSensor.with_sensitivity(n_dots=2, n_gates=2)
        )
        low, high = voltage_range
        specs = tuple(
            GateSpec(name=gate, min_voltage=low, max_voltage=high)
            for gate in capacitance.gate_names
        )
        return cls(capacitance=capacitance, sensor=sensor, gate_specs=specs, name=name)

    @classmethod
    def linear_array(
        cls,
        n_dots: int = 4,
        nearest_cross_fraction: float = 0.25,
        next_nearest_cross_fraction: float = 0.05,
        charging_energy_mev: float = 3.0,
        voltage_range: tuple[float, float] = (0.0, 1.0),
        name: str | None = None,
    ) -> "DotArrayDevice":
        """A linear ``n_dots`` array with one plunger per dot (paper's Fig. 1)."""
        capacitance = CapacitanceModel.linear_array(
            n_dots=n_dots,
            charging_energy_mev=charging_energy_mev,
            nearest_cross_fraction=nearest_cross_fraction,
            next_nearest_cross_fraction=next_nearest_cross_fraction,
        )
        sensor = ChargeSensor.with_sensitivity(n_dots=n_dots, n_gates=n_dots)
        low, high = voltage_range
        specs = tuple(
            GateSpec(name=gate, min_voltage=low, max_voltage=high)
            for gate in capacitance.gate_names
        )
        return cls(
            capacitance=capacitance,
            sensor=sensor,
            gate_specs=specs,
            name=name or f"{n_dots}-dot-array",
        )

    @classmethod
    def quadruple_dot(cls, **kwargs) -> "DotArrayDevice":
        """Convenience wrapper for the four-dot device of the paper's Fig. 1."""
        kwargs.setdefault("n_dots", 4)
        kwargs.setdefault("name", "quadruple-dot")
        return cls.linear_array(**kwargs)

    @classmethod
    def grid_array(
        cls,
        rows: int = 2,
        cols: int = 3,
        nearest_cross_fraction: float = 0.25,
        next_nearest_cross_fraction: float = 0.05,
        charging_energy_mev: float = 3.0,
        voltage_range: tuple[float, float] = (0.0, 1.0),
        name: str | None = None,
    ) -> "DotArrayDevice":
        """A ``rows x cols`` 2-D dot lattice with one plunger per dot.

        Dots are indexed row-major; :meth:`neighbour_pairs` walks the
        lattice's 4-connected edges in sorted ``(dot_a, dot_b)`` order,
        so the pairwise extraction visits every physical neighbour bond —
        ``rows * (cols - 1) + (rows - 1) * cols`` pairs, more than the
        ``n - 1`` of a chain with the same dot count.
        """
        if rows < 1 or cols < 1:
            raise DeviceModelError("grid_array needs rows >= 1 and cols >= 1")
        capacitance = CapacitanceModel.grid_lattice(
            rows=rows,
            cols=cols,
            charging_energy_mev=charging_energy_mev,
            nearest_cross_fraction=nearest_cross_fraction,
            next_nearest_cross_fraction=next_nearest_cross_fraction,
        )
        n_dots = rows * cols
        site = lambda r, c: r * cols + c  # noqa: E731
        edges: list[tuple[int, int]] = []
        for r in range(rows):
            for c in range(cols):
                if c + 1 < cols:
                    edges.append((site(r, c), site(r, c + 1)))
        for r in range(rows):
            for c in range(cols):
                if r + 1 < rows:
                    edges.append((site(r, c), site(r + 1, c)))
        sensor = ChargeSensor.with_sensitivity(n_dots=n_dots, n_gates=n_dots)
        low, high = voltage_range
        specs = tuple(
            GateSpec(name=gate, min_voltage=low, max_voltage=high)
            for gate in capacitance.gate_names
        )
        return cls(
            capacitance=capacitance,
            sensor=sensor,
            gate_specs=specs,
            name=name or f"{rows}x{cols}-lattice",
            adjacency=tuple(sorted(edges)),
        )
