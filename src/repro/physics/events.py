"""Shared stochastic-process plumbing for the time-dependent physics models.

Both the temporal telegraph sampler (:mod:`repro.physics.noise`) and the
charge-jump drift state (:mod:`repro.physics.drift`) are driven by the same
construction: a Poisson-like point process in simulated time whose event
times (and optional per-event marks) form **one fixed random sequence**,
generated lazily from a private stream as later and later horizons are
queried.  Because the sequence is a function of the stream alone — never of
the queries — values derived from it are independent of query order and
batching, which is what keeps the scalar and batched probe paths
bit-identical.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..exceptions import ConfigurationError


def require_finite(name: str, value: float) -> None:
    """Raise :class:`ConfigurationError` unless ``value`` is finite."""
    if not np.isfinite(value):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")


class ExponentialEventStream:
    """Lazily extended event times with exponential gaps.

    Parameters
    ----------
    rng:
        Private generator the stream draws from; nothing else may consume it.
    mean_gap_s:
        Mean gap between events, in simulated seconds (must be positive).
    draw_marks:
        Optional callback ``(n_events, rng)`` invoked once per generated
        chunk, *after* the chunk's gap draws, so implementations can attach
        per-event randomness (jump signs/sizes) in a fixed order.
    """

    _CHUNK = 64

    def __init__(
        self,
        rng: np.random.Generator,
        mean_gap_s: float,
        draw_marks: Callable[[int, np.random.Generator], None] | None = None,
    ) -> None:
        if mean_gap_s <= 0 or not np.isfinite(mean_gap_s):
            raise ConfigurationError("mean_gap_s must be positive and finite")
        self._rng = rng
        self._mean_gap_s = float(mean_gap_s)
        self._draw_marks = draw_marks
        self._times = np.zeros(0, dtype=float)
        self._horizon_s = 0.0

    def extend_to(self, t_max: float) -> None:
        """Generate events until the stream covers ``t_max``."""
        while self._horizon_s <= t_max:
            gaps = self._rng.exponential(self._mean_gap_s, size=self._CHUNK)
            new = self._horizon_s + np.cumsum(gaps)
            self._times = np.concatenate([self._times, new])
            if self._draw_marks is not None:
                self._draw_marks(self._CHUNK, self._rng)
            self._horizon_s = float(new[-1])

    def count_before(self, times_s: np.ndarray) -> np.ndarray:
        """Number of events at or before each timestamp (extends as needed)."""
        times = np.asarray(times_s, dtype=float)
        if times.size:
            self.extend_to(float(np.max(times[np.isfinite(times)], initial=0.0)))
        return np.searchsorted(self._times, times, side="right")
