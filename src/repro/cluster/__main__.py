"""CLI for real multi-host runs: ``python -m repro.cluster worker ...``.

Start one worker per core on each machine of the fleet, pointing them at
the campaign driver's coordinator address::

    python -m repro.cluster worker --connect 10.0.0.5:7077

The driver side binds that address by selecting the matching backend
spec — ``TuningCampaign(grid, backend="cluster:10.0.0.5:7077")`` — and
the campaign starts as soon as the first worker registers.  ``--loop``
keeps a worker alive across successive campaigns.
"""

from __future__ import annotations

import argparse

from ..exceptions import ConfigurationError
from .worker import worker_main


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="repro cluster processes",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    worker = commands.add_parser(
        "worker", help="serve campaigns from a remote coordinator"
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="the coordinator address to register with",
    )
    worker.add_argument(
        "--loop",
        action="store_true",
        help="keep serving successive campaigns instead of exiting after one",
    )
    worker.add_argument(
        "--connect-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="how long to wait for the coordinator before giving up",
    )
    args = parser.parse_args(argv)
    host, sep, port_text = args.connect.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not sep or not host or not 0 < port < 65536:
        raise ConfigurationError(
            f"malformed --connect address {args.connect!r}; expected HOST:PORT"
        )
    worker_main(
        host,
        port,
        reconnect=True,
        serve_forever=args.loop,
        connect_timeout_s=args.connect_timeout,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
