"""`ClusterBackend`: the multi-host execution backend, plus `LocalCluster`.

:class:`ClusterBackend` implements the streaming
:class:`~repro.execution.base.ExecutionBackend` protocol over the
coordinator/worker wire of :mod:`repro.cluster.coordinator`.  It holds no
live network state at rest — a coordinator (and, in local mode, a
:class:`LocalCluster` of worker subprocesses) is created per ``submit`` —
so backend instances stay picklable, content-repr'd, and registry-audit
clean like every other backend.

Two modes:

* **local** (``ClusterBackend(n_workers=4)``, spec ``"cluster:local:4"``):
  the backend launches ``n_workers`` spawn-start worker subprocesses on
  localhost, used by tests, CI, and single-machine scale-out;
* **listen** (``ClusterBackend(host="0.0.0.0", port=7077)``, spec
  ``"cluster:HOST:PORT"``): the backend binds the given address and waits
  for externally started workers — ``python -m repro.cluster worker
  --connect HOST:PORT`` on each machine of the fleet.

Records are bit-identical to
:class:`~repro.execution.backends.SerialBackend` at any worker count:
seeds ride with the jobs, the coordinator's done-set dedups re-lease
races, and worker deaths condense into the canonical
:class:`~repro.execution.base.WorkerCrash` markers.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from typing import Any, Callable, Iterable, Iterator

from ..exceptions import ConfigurationError
from ..execution.base import ExecutionBackend, SupportsJobId, register_backend
from ..execution.chunking import AdaptiveChunkPolicy
from .coordinator import DEFAULT_HEARTBEAT_S, ClusterStats, Coordinator
from .worker import _local_worker

__all__ = ["ClusterBackend", "LocalCluster", "job_affinity"]


def job_affinity(job: Any) -> str | None:
    """A job's kernel-cache affinity key, or ``None`` when it has none.

    Jobs sharing this key rasterise the same charge-stability kernel
    (device geometry, gate pair, resolution, and scenario fix the kernel;
    seeds, noise draws, and repeats do not), so the coordinator prefers to
    place them on a worker whose per-process
    :func:`~repro.kernelcache.default_kernel_cache` already holds it.
    This is a cheap *proxy* for the full
    :func:`~repro.kernelcache.kernel_fingerprint` — computing the real
    fingerprint needs the voltage axes, which only exist inside the job —
    but a proxy collision merely costs one redundant rasterisation, never
    correctness.
    """
    device = getattr(job, "device", None)
    if device is None:
        return None
    return "|".join(
        (
            repr(device),
            str(getattr(job, "gate_x", "")),  # repro: allow[silent-fallback] -- affinity proxy over duck-typed jobs: a missing field degrades placement, never results
            str(getattr(job, "gate_y", "")),  # repro: allow[silent-fallback] -- affinity proxy over duck-typed jobs: a missing field degrades placement, never results
            str(getattr(job, "resolution", "")),
            str(getattr(job, "scenario", "")),  # repro: allow[silent-fallback] -- affinity proxy over duck-typed jobs: a missing field degrades placement, never results
        )
    )


class LocalCluster:
    """N spawn-start worker subprocesses serving one coordinator address.

    Workers are started eagerly and watched: a worker that dies (an
    injected crash's ``os._exit``, a chaos SIGKILL) is respawned so the
    cluster keeps its configured width for the rest of the campaign —
    the distributed analogue of a process pool replacing a broken worker.

    Parameters
    ----------
    n_workers:
        Subprocesses to keep alive.
    address:
        The coordinator's ``(host, port)``.
    respawn:
        Replace dead workers (default).  Chaos tests that want a death to
        *stick* pass ``False``.
    mute_first_worker_after:
        Test hook forwarded to the first worker only: stop heartbeating
        after that many results, exercising the missed-beat death path.
    """

    def __init__(
        self,
        n_workers: int,
        address: tuple[str, int],
        respawn: bool = True,
        mute_first_worker_after: int | None = None,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError("n_workers must be at least 1")
        self._address = address
        self._respawn = respawn
        self._stopping = False
        self._lock = threading.Lock()
        context = multiprocessing.get_context("spawn")
        self._context = context
        self._procs = [
            context.Process(
                target=_local_worker,
                args=(
                    address[0],
                    address[1],
                    mute_first_worker_after if index == 0 else None,
                ),
                daemon=True,
            )
            for index in range(n_workers)
        ]
        for proc in self._procs:
            proc.start()
        self._watchdog = threading.Thread(target=self._watch, daemon=True)
        self._watchdog.start()

    @property
    def processes(self) -> tuple:
        """The live worker process handles (chaos tests kill through these)."""
        with self._lock:
            return tuple(self._procs)

    def _watch(self) -> None:
        while not self._stopping:
            time.sleep(0.1)
            with self._lock:
                if self._stopping or not self._respawn:
                    continue
                for index, proc in enumerate(self._procs):
                    if proc.is_alive():
                        continue
                    replacement = self._context.Process(
                        target=_local_worker,
                        args=(self._address[0], self._address[1], None),
                        daemon=True,
                    )
                    replacement.start()
                    self._procs[index] = replacement

    def kill_one(self) -> int:
        """SIGKILL the first live worker (chaos hook); returns its pid."""
        with self._lock:
            for proc in self._procs:
                if proc.is_alive() and proc.pid is not None:
                    os.kill(proc.pid, signal.SIGKILL)
                    return proc.pid
        raise ConfigurationError("no live worker to kill")

    def stop(self) -> None:
        """Terminate every worker and stop respawning (idempotent)."""
        with self._lock:
            self._stopping = True
            procs = tuple(self._procs)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)


class ClusterBackend(ExecutionBackend):
    """Distributed execution over the cluster wire protocol.

    Parameters
    ----------
    n_workers:
        Local mode: worker subprocesses to launch per submission.
    host / port:
        Listen mode: bind this address and wait for remote workers
        (``python -m repro.cluster worker --connect HOST:PORT``).  Mutually
        exclusive with treating ``n_workers`` as a launch count.
    heartbeat_s:
        Worker heartbeat period; death is declared after ~5 missed beats.
    chunking:
        An :class:`~repro.execution.chunking.AdaptiveChunkPolicy` used as
        lease-size configuration (a fresh copy per submission); the shared
        default targets 0.25 s leases.
    register_timeout_s:
        Listen mode: how long a submission waits for the first worker
        before failing loudly.
    stall_timeout_s:
        How long a submission tolerates a cluster that had workers but has
        none left (all died, none reconnected) with jobs still unfinished
        before raising instead of blocking forever.

    .. warning::
       The wire protocol ships pickles both ways (the task callable to
       workers, crash payloads back), and unpickling is arbitrary code
       execution for whoever you connect to.  Listen mode
       (``host``/``port``, e.g. ``cluster:0.0.0.0:7077``) must therefore
       only bind on networks where every host that can reach the port is
       trusted — and workers must only ``--connect`` to coordinators they
       trust.  Local mode never leaves the loopback interface.
    """

    name = "cluster"

    def __init__(
        self,
        n_workers: int | None = None,
        host: str | None = None,
        port: int | None = None,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        chunking: AdaptiveChunkPolicy | None = None,
        register_timeout_s: float = 60.0,
        stall_timeout_s: float = 300.0,
    ) -> None:
        if host is None and port is not None:
            raise ConfigurationError("port requires host (listen mode)")
        if host is not None and port is None:
            raise ConfigurationError("host requires port (listen mode)")
        if host is None:
            n_workers = 2 if n_workers is None else int(n_workers)
            if n_workers < 1:
                raise ConfigurationError("n_workers must be at least 1")
        elif n_workers is not None:
            raise ConfigurationError(
                "n_workers is a local-mode knob; in listen mode the worker "
                "count is however many workers connect"
            )
        if heartbeat_s <= 0:
            raise ConfigurationError("heartbeat_s must be positive")
        if register_timeout_s <= 0:
            raise ConfigurationError("register_timeout_s must be positive")
        if stall_timeout_s <= 0:
            raise ConfigurationError("stall_timeout_s must be positive")
        if chunking is not None and not isinstance(chunking, AdaptiveChunkPolicy):
            raise ConfigurationError(
                "chunking must be an AdaptiveChunkPolicy instance (or None)"
            )
        self._n_workers = n_workers
        self._host = host
        self._port = None if port is None else int(port)
        self._heartbeat_s = float(heartbeat_s)
        self._chunking = chunking
        self._register_timeout_s = float(register_timeout_s)
        self._stall_timeout_s = float(stall_timeout_s)
        self._last_stats: ClusterStats | None = None
        self._active_cluster: LocalCluster | None = None
        self._mute_first_worker_after: int | None = None

    # ------------------------------------------------------------------
    @property
    def max_workers(self) -> int:
        """Local worker count (listen mode reports 1: the count is remote)."""
        return self._n_workers if self._n_workers is not None else 1

    @property
    def last_stats(self) -> ClusterStats | None:
        """Scheduling counters from the most recent submission."""
        return self._last_stats

    # ------------------------------------------------------------------
    def submit(
        self,
        jobs: Iterable[SupportsJobId],
        run_one: Callable[[Any], Any],
    ) -> Iterator[tuple[int, Any]]:
        """Stream records from the cluster, surviving worker death.

        Builds a fresh coordinator (and, in local mode, a fresh
        :class:`LocalCluster`) per call; the generator tears both down when
        it finishes or is abandoned.  Duplicate records from steal/re-lease
        races are dropped coordinator-side, so each job id is yielded at
        most once.
        """
        jobs = tuple(jobs)
        if not jobs:
            return
        coordinator = Coordinator(
            host=self._host or "127.0.0.1",
            port=self._port or 0,
            heartbeat_s=self._heartbeat_s,
            policy=self._chunking,
            affinity=job_affinity,
            register_timeout_s=self._register_timeout_s,
            stall_timeout_s=self._stall_timeout_s,
        )
        cluster: LocalCluster | None = None
        try:
            if self._n_workers is not None:
                cluster = LocalCluster(
                    min(self._n_workers, len(jobs)),
                    coordinator.address,
                    mute_first_worker_after=self._mute_first_worker_after,
                )
                self._active_cluster = cluster
            yield from coordinator.run(jobs, run_one)
        finally:
            coordinator.close()
            self._last_stats = coordinator.stats
            self._active_cluster = None
            if cluster is not None:
                cluster.stop()


def _cluster_spec(
    arg: str, n_workers: int, chunk_size: int | None
) -> ClusterBackend:
    """Build from ``"cluster:local:N"`` or ``"cluster:HOST:PORT"``."""
    head, sep, rest = arg.partition(":")
    if not sep or not rest:
        raise ConfigurationError(
            f"malformed backend spec 'cluster:{arg}': expected "
            "'cluster:local:N' or 'cluster:HOST:PORT'"
        )
    if head == "local":
        try:
            workers = int(rest)
        except ValueError:
            raise ConfigurationError(
                f"malformed backend spec 'cluster:{arg}': worker count "
                "must be an integer, e.g. 'cluster:local:4'"
            ) from None
        if workers < 1:
            raise ConfigurationError(
                f"malformed backend spec 'cluster:{arg}': worker count "
                "must be at least 1"
            )
        return ClusterBackend(n_workers=workers)
    try:
        port = int(rest)
    except ValueError:
        raise ConfigurationError(
            f"malformed backend spec 'cluster:{arg}': port must be an "
            "integer, e.g. 'cluster:10.0.0.5:7077'"
        ) from None
    return ClusterBackend(host=head, port=port)


register_backend(
    "cluster",
    lambda n_workers, chunk_size: ClusterBackend(n_workers=n_workers),
    spec_factory=_cluster_spec,
)
