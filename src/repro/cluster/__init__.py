"""Multi-host campaign execution: coordinator, workers, wire protocol.

The cluster layer scales the :mod:`repro.execution` backend seam across
machines: a :class:`~repro.cluster.backend.ClusterBackend` speaks the same
streaming ``submit(jobs, run_one)`` contract as the in-process backends,
but dispatches over TCP to worker processes — local subprocesses via
:class:`~repro.cluster.backend.LocalCluster`, or remote machines running
``python -m repro.cluster worker --connect HOST:PORT``.

Scheduling is adaptive-lease work stealing with cache-affine placement
(:mod:`repro.cluster.coordinator`); worker death is detected by missed
heartbeats or connection loss and condensed into the canonical
:class:`~repro.execution.base.WorkerCrash` markers, so campaigns remain
bit-identical to a serial run under any worker count, chaos included.
Select it like any backend: ``TuningCampaign(grid, backend="cluster:local:4")``.
"""

from .backend import ClusterBackend, LocalCluster, job_affinity
from .coordinator import DEFAULT_HEARTBEAT_S, ClusterStats, Coordinator
from .wire import (
    MESSAGE_CLASSES,
    RECORD_ENCODINGS,
    decode_record,
    encode_record,
    recv_message,
    send_message,
)
from .worker import worker_main

__all__ = [
    "ClusterBackend",
    "ClusterStats",
    "Coordinator",
    "DEFAULT_HEARTBEAT_S",
    "LocalCluster",
    "MESSAGE_CLASSES",
    "RECORD_ENCODINGS",
    "decode_record",
    "encode_record",
    "job_affinity",
    "recv_message",
    "send_message",
    "worker_main",
]
