"""The cluster coordinator: lease, steal, detect death, stay bit-identical.

One :class:`Coordinator` drives one submission.  It owns the job list and
the authoritative done-set; workers own nothing but the chunk they were
most recently leased.  The scheduling loop is event-driven off the wire:

* **registration** — a connecting worker is welcomed, handed the pickled
  ``run_one`` once, and immediately granted a lease;
* **leasing** — chunks are sized by the shared
  :class:`~repro.execution.chunking.AdaptiveChunkPolicy` (observed per-job
  wall time targets a fixed lease duration) and filled cache-affine: jobs
  whose affinity key the worker has already served are preferred, so
  repeated kernels rasterise where they are already cached;
* **work stealing** — a worker that drains while the pending queue is
  empty triggers a steal from the most-loaded peer, which hands back the
  unstarted half of its lease;
* **death** — missed heartbeats or connection loss declare a worker dead.
  Its outstanding jobs are re-leased *one per lease* as suspects; a worker
  that dies holding a single suspect job convicts it, and the job condenses
  into the canonical :class:`~repro.execution.base.WorkerCrash` marker —
  exactly the process pool's rescue semantics, so
  :class:`~repro.execution.controller.RunController` and checkpoint
  journals need no cluster-specific handling.

Determinism: the coordinator never reorders, drops, or duplicates job ids
(the done-set dedups steal/re-lease races), and jobs carry their seeds, so
records are bit-identical to :class:`~repro.execution.backends.SerialBackend`
at any worker count and under any interleaving of deaths and steals.
"""

from __future__ import annotations

import pickle
import queue
import socket
import threading
import time
from dataclasses import dataclass, fields
from typing import Any, Callable, Iterator

from ..exceptions import ClusterProtocolError
from ..execution.base import SupportsJobId, WorkerCrash
from ..execution.chunking import AdaptiveChunkPolicy
from .wire import (
    Crash,
    Heartbeat,
    Lease,
    Register,
    Result,
    Shutdown,
    Steal,
    Stolen,
    Task,
    Welcome,
    decode_record,
    recv_message,
    send_message,
)

__all__ = ["ClusterStats", "Coordinator", "DEFAULT_HEARTBEAT_S"]

#: Default worker heartbeat period.  Death is declared after
#: ``HEARTBEAT_TIMEOUT_FACTOR`` missed beats, so detection latency is
#: about one second at the default — fast enough for tests and chaos
#: drills, slow enough that a GC pause never convicts a healthy worker.
DEFAULT_HEARTBEAT_S = 0.2

#: Missed-beat multiplier before a silent worker is declared dead.
HEARTBEAT_TIMEOUT_FACTOR = 5.0

#: How many queue-front jobs a lease may scan for cache-affine matches.
_AFFINITY_WINDOW = 64


@dataclass(frozen=True)
class ClusterStats:
    """Counters from one coordinator run (see ``Coordinator.stats``)."""

    #: Distinct worker registrations observed (re-registrations count).
    n_workers: int = 0
    n_leases: int = 0
    n_steal_requests: int = 0
    n_stolen_jobs: int = 0
    n_worker_deaths: int = 0
    #: Jobs re-leased because their worker died mid-lease.
    n_requeued_jobs: int = 0
    #: Jobs condensed to :class:`~repro.execution.base.WorkerCrash` markers.
    n_crash_markers: int = 0
    #: Leased jobs that matched their worker's warm affinity set.
    n_affinity_hits: int = 0
    #: Connections dropped for speaking out of protocol before registering
    #: (stray clients, port scanners, a second campaign's workers).
    n_rejected_peers: int = 0
    #: Mean seconds from steal request to the stolen jobs being re-leased.
    steal_latency_s: float = 0.0

    def as_dict(self) -> dict:
        """JSON-native dict view (every field)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterStats":
        """Rebuild from :meth:`as_dict` output."""
        return cls(**{f.name: data[f.name] for f in fields(cls)})


class _WorkerState:
    """Coordinator-side view of one live worker connection."""

    def __init__(self, worker_id: int, conn: socket.socket) -> None:
        self.worker_id = worker_id
        self.conn = conn
        self.send_lock = threading.Lock()
        self.last_seen = time.monotonic()
        self.outstanding: set[int] = set()
        self.warm: set[str] = set()
        self.lease_started = 0.0
        self.lease_size = 0
        #: ``(thief_id, requested_at)`` while a Steal is in flight to us.
        self.steal_pending: tuple[int, float] | None = None

    def send(self, message, payload: bytes = b"") -> None:
        with self.send_lock:
            send_message(self.conn, message, payload)


class Coordinator:
    """Serve one job batch to TCP workers; see the module docstring.

    Parameters
    ----------
    host / port:
        Listen address.  Port ``0`` (the default) binds an ephemeral port;
        the actual address is available as :attr:`address` immediately
        after construction, before any worker exists.
    heartbeat_s:
        Heartbeat period pushed to workers in their ``Welcome``.
    policy:
        Chunk-size policy *configuration*; a fresh unobserved copy is taken
        per run so coordinators can share one instance.
    affinity:
        Optional ``job -> str | None`` giving a job's cache-affinity key
        (e.g. :func:`repro.cluster.backend.job_affinity`).  ``None``
        disables affine placement.
    register_timeout_s:
        Seconds :meth:`run` waits for the *first* worker before raising
        :class:`~repro.exceptions.ClusterProtocolError` — a cluster nobody
        joins should fail loudly, not hang.
    stall_timeout_s:
        Seconds :meth:`run` tolerates a cluster that *had* workers but has
        none left (every worker died and none reconnected) while jobs are
        still unfinished, before raising
        :class:`~repro.exceptions.ClusterProtocolError` instead of blocking
        forever.  Generous by default: local clusters respawn workers and
        remote fleets reconnect, so only a permanently emptied cluster
        trips it.

    .. warning::
       The data plane trusts its peers: workers unpickle the ``Task``
       callable from the coordinator, and the coordinator unpickles
       ``Crash`` payloads from registered workers — pickle is arbitrary
       code execution for whoever you connect to.  Only bind non-loopback
       addresses (and only point workers at coordinators) on networks
       where every reachable host is trusted.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        policy: AdaptiveChunkPolicy | None = None,
        affinity: Callable[[Any], str | None] | None = None,
        register_timeout_s: float = 60.0,
        stall_timeout_s: float = 300.0,
    ) -> None:
        self._heartbeat_s = float(heartbeat_s)
        self._policy = (policy or AdaptiveChunkPolicy()).fresh()
        self._affinity = affinity
        self._register_timeout_s = float(register_timeout_s)
        self._stall_timeout_s = float(stall_timeout_s)
        self._last_worker_alive = time.monotonic()
        self._listener = socket.create_server((host, int(port)))
        self._lock = threading.RLock()
        self._out: queue.Queue = queue.Queue()
        self._workers: dict[int, _WorkerState] = {}
        self._hungry: set[int] = set()
        self._by_id: dict[int, SupportsJobId] = {}
        self._pending: list[int] = []
        self._done: set[int] = set()
        self._suspects: set[int] = set()
        self._task_blob = b""
        self._next_worker_id = 0
        self._closing = False
        self._ever_registered = False
        self._steal_latencies: list[float] = []
        self._counts = {
            "n_workers": 0,
            "n_leases": 0,
            "n_steal_requests": 0,
            "n_stolen_jobs": 0,
            "n_worker_deaths": 0,
            "n_requeued_jobs": 0,
            "n_crash_markers": 0,
            "n_affinity_hits": 0,
            "n_rejected_peers": 0,
        }

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The ``(host, port)`` workers should connect to."""
        name = self._listener.getsockname()
        return name[0], name[1]

    @property
    def stats(self) -> ClusterStats:
        """Scheduling counters accumulated so far."""
        latencies = self._steal_latencies
        return ClusterStats(
            steal_latency_s=sum(latencies) / len(latencies) if latencies else 0.0,
            **self._counts,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        jobs: tuple[SupportsJobId, ...],
        run_one: Callable[[Any], Any],
    ) -> Iterator[tuple[int, Any]]:
        """Serve the batch; yield ``(job_id, record)`` in completion order.

        Worker deaths surface as :class:`~repro.execution.base.WorkerCrash`
        records only after the suspect re-lease pass convicts a job; an
        in-protocol :class:`~repro.cluster.wire.Crash` (``run_one`` raised)
        re-raises the worker's exception here, per the backend contract.
        """
        with self._lock:
            self._by_id = {job.job_id: job for job in jobs}
            self._pending = [job.job_id for job in jobs]
            self._task_blob = pickle.dumps(run_one)
        threading.Thread(target=self._accept_loop, daemon=True).start()
        threading.Thread(target=self._monitor_loop, daemon=True).start()
        started = time.monotonic()
        yielded = 0
        try:
            while yielded < len(jobs):
                try:
                    event = self._out.get(timeout=self._heartbeat_s)
                except queue.Empty:
                    self._check_liveness(started, len(jobs) - yielded)
                    continue
                # Every event is a worker speaking: the stall clock resets.
                self._last_worker_alive = time.monotonic()
                if event[0] == "record":
                    _, job_id, record = event
                    yielded += 1
                    yield job_id, record
                else:
                    raise event[1]
        finally:
            self.close()

    def _check_liveness(self, started: float, n_unfinished: int) -> None:
        """Fail loudly when nobody is (or ever was) serving the batch.

        Called from :meth:`run` whenever a heartbeat interval passes with
        no event: before the first registration the register timeout
        governs; afterwards, a cluster whose last worker died without
        replacement for ``stall_timeout_s`` raises instead of letting
        :meth:`run` block forever on jobs no one will ever lease.
        """
        now = time.monotonic()
        with self._lock:
            if self._workers:
                self._last_worker_alive = now
                return
        if not self._ever_registered:
            if now - started > self._register_timeout_s:
                raise ClusterProtocolError(
                    "no worker registered within "
                    f"{self._register_timeout_s:.0f}s; start workers "
                    "with `python -m repro.cluster worker --connect "
                    f"{self.address[0]}:{self.address[1]}` or use a "
                    "LocalCluster"
                ) from None
            return
        if now - self._last_worker_alive > self._stall_timeout_s:
            raise ClusterProtocolError(
                f"cluster stalled: every worker died and none returned for "
                f"{self._stall_timeout_s:.0f}s with {n_unfinished} jobs "
                "unfinished"
            ) from None

    def close(self) -> None:
        """Shut the cluster session down (idempotent)."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            workers = list(self._workers.values())
            self._workers.clear()
        for state in workers:
            try:
                state.send(Shutdown())
            except OSError:
                pass  # worker already gone; death handling owns its jobs
            try:
                state.conn.close()
            except OSError:
                pass  # repro: double-close race with the reader thread
        self._listener.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed by close()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(target=self._serve, args=(conn,), daemon=True).start()

    def _serve(self, conn: socket.socket) -> None:
        worker_id: int | None = None
        try:
            while True:
                message, payload = recv_message(conn)
                if isinstance(message, Register):
                    worker_id = self._on_register(conn, message)
                elif worker_id is None:
                    raise ClusterProtocolError(
                        f"{message.kind} frame before register"
                    )
                elif isinstance(message, Heartbeat):
                    self._on_heartbeat(worker_id)
                elif isinstance(message, Result):
                    self._on_result(worker_id, message, payload)
                elif isinstance(message, Stolen):
                    self._on_stolen(worker_id, message)
                elif isinstance(message, Crash):
                    self._on_crash(payload)
                else:
                    raise ClusterProtocolError(
                        f"unexpected {message.kind} frame from a worker"
                    )
        except (EOFError, ConnectionError, OSError):
            pass  # connection lost: fall through to the death declaration
        except ClusterProtocolError as exc:
            if worker_id is None:
                # A peer that never registered is not our worker — a stray
                # client, a port scanner, a second campaign's worker.  Its
                # nonsense must not abort this campaign: drop the
                # connection (the finally below closes it) and count it.
                with self._lock:
                    self._counts["n_rejected_peers"] += 1
            else:
                self._out.put(("raise", exc))
        finally:
            if worker_id is not None:
                self._declare_dead(worker_id)
            else:
                try:
                    conn.close()
                except OSError:
                    pass  # repro: already closed by the peer

    def _on_register(self, conn: socket.socket, message: Register) -> int:
        with self._lock:
            self._next_worker_id += 1
            worker_id = self._next_worker_id
            state = _WorkerState(worker_id, conn)
            self._workers[worker_id] = state
            self._counts["n_workers"] += 1
            self._ever_registered = True
        state.send(Welcome(worker_id=worker_id, heartbeat_s=self._heartbeat_s))
        state.send(Task(), self._task_blob)
        with self._lock:
            self._grant(worker_id)
        return worker_id

    def _on_heartbeat(self, worker_id: int) -> None:
        with self._lock:
            state = self._workers.get(worker_id)
            if state is not None:
                state.last_seen = time.monotonic()

    def _on_result(self, worker_id: int, message: Result, payload: bytes) -> None:
        record = decode_record(message.encoding, payload)
        job_id = message.job_id
        with self._lock:
            state = self._workers.get(worker_id)
            if state is not None:
                state.last_seen = time.monotonic()
            if job_id in self._done:
                # A re-leased twin already finished (steal/death race) —
                # the done-set is the dedup point the contract relies on.
                return
            self._done.add(job_id)
            self._suspects.discard(job_id)
            self._out.put(("record", job_id, record))
            if state is None:
                return
            state.outstanding.discard(job_id)
            if self._affinity is not None:
                key = self._affinity(self._by_id[job_id])
                if key is not None:
                    state.warm.add(key)
            if not state.outstanding:
                self._policy.observe(
                    state.lease_size, time.monotonic() - state.lease_started
                )
                self._grant(worker_id)

    def _on_stolen(self, worker_id: int, message: Stolen) -> None:
        with self._lock:
            victim = self._workers.get(worker_id)
            if victim is None or victim.steal_pending is None:
                return
            thief_id, requested_at = victim.steal_pending
            victim.steal_pending = None
            job_ids = [
                job_id
                for job_id in message.job_ids
                if job_id in victim.outstanding and job_id not in self._done
            ]
            victim.outstanding.difference_update(job_ids)
            if not job_ids:
                self._hungry.add(thief_id)
                return
            self._steal_latencies.append(time.monotonic() - requested_at)
            self._counts["n_stolen_jobs"] += len(job_ids)
            thief = self._workers.get(thief_id)
            if thief is None or thief.outstanding:
                # Thief died (or got work) while the steal was in flight;
                # the stolen jobs rejoin the queue for whoever drains next.
                self._pending[:0] = job_ids
                self._feed_hungry()
                return
            self._lease_to(thief, job_ids)

    def _on_crash(self, payload: bytes) -> None:
        self._out.put(("raise", pickle.loads(payload)))

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _grant(self, worker_id: int) -> None:
        """Lease pending work (or start a steal) for an idle worker.

        Caller holds the lock.
        """
        state = self._workers.get(worker_id)
        if state is None or state.outstanding or self._closing:
            return
        if self._pending:
            self._lease_to(state, self._select_chunk(state))
            return
        victim = self._pick_victim(worker_id)
        if victim is None:
            self._hungry.add(worker_id)
            return
        victim.steal_pending = (worker_id, time.monotonic())
        self._counts["n_steal_requests"] += 1
        try:
            victim.send(Steal(max_jobs=len(victim.outstanding) // 2))
        except OSError:
            # Victim died under us; its reader thread will requeue the
            # jobs, which re-feeds this (now hungry) worker.
            victim.steal_pending = None
            self._hungry.add(worker_id)

    def _select_chunk(self, state: _WorkerState) -> list[int]:
        """Pop the next lease's job ids off the pending queue.

        Suspects lease solo (exact crash attribution needs a worker that
        dies holding one job); otherwise the adaptive policy sizes the
        chunk — capped by a fair share of the queue so one worker cannot
        strand its peers idle — and cache-affine jobs near the queue front
        are preferred.
        """
        head = self._pending[0]
        if head in self._suspects:
            self._pending.pop(0)
            return [head]
        alive = max(1, len(self._workers))
        size = max(
            1,
            min(
                self._policy.chunk_size(),
                -(-len(self._pending) // alive),  # ceil-div fair share
            ),
        )
        window = self._pending[:_AFFINITY_WINDOW]
        chosen: list[int] = []
        if self._affinity is not None and state.warm:
            for job_id in window:
                if len(chosen) >= size:
                    break
                if job_id in self._suspects:
                    continue
                key = self._affinity(self._by_id[job_id])
                if key is not None and key in state.warm:
                    chosen.append(job_id)
            self._counts["n_affinity_hits"] += len(chosen)
        for job_id in window:
            if len(chosen) >= size:
                break
            if job_id in self._suspects or job_id in chosen:
                continue
            chosen.append(job_id)
        if not chosen:
            # Every window job is a suspect; lease the head solo.
            chosen = [head]
        chosen_set = set(chosen)
        self._pending = [j for j in self._pending if j not in chosen_set]
        return chosen

    def _lease_to(self, state: _WorkerState, job_ids: list[int]) -> None:
        """Ship a lease; on send failure the jobs go back to the queue."""
        state.outstanding = set(job_ids)
        state.lease_started = time.monotonic()
        state.lease_size = len(job_ids)
        self._counts["n_leases"] += 1
        self._hungry.discard(state.worker_id)
        payload = pickle.dumps(tuple(self._by_id[j] for j in job_ids))
        try:
            state.send(Lease(job_ids=tuple(job_ids)), payload)
        except OSError:
            # The worker died between grant and send; its reader thread's
            # death declaration will requeue `outstanding`.
            pass

    def _pick_victim(self, thief_id: int) -> _WorkerState | None:
        """The most-loaded worker worth stealing from, if any."""
        best: _WorkerState | None = None
        for state in self._workers.values():
            if state.worker_id == thief_id or state.steal_pending is not None:
                continue
            if len(state.outstanding) < 2:
                continue
            if best is None or len(state.outstanding) > len(best.outstanding):
                best = state
        return best

    def _feed_hungry(self) -> None:
        """Re-grant to workers parked idle.  Caller holds the lock."""
        for worker_id in sorted(self._hungry):
            if not self._pending:
                return
            self._hungry.discard(worker_id)
            self._grant(worker_id)

    # ------------------------------------------------------------------
    # Death handling
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        timeout = self._heartbeat_s * HEARTBEAT_TIMEOUT_FACTOR
        while not self._closing:
            time.sleep(self._heartbeat_s / 2)
            now = time.monotonic()
            with self._lock:
                silent = [
                    worker_id
                    for worker_id, state in self._workers.items()
                    if now - state.last_seen > timeout
                ]
            for worker_id in silent:
                self._declare_dead(worker_id)

    def _declare_dead(self, worker_id: int) -> None:
        """Remove a worker and re-lease its in-flight jobs.

        A worker that died holding exactly one *suspect* job convicts it —
        the job already killed one multi-job lease (or a previous solo
        lease), and now a worker running it alone — so it condenses into
        the canonical :class:`~repro.execution.base.WorkerCrash` marker,
        mirroring the process pool's fresh-rescue-pool attribution.  Every
        other outstanding job is requeued at the front as a suspect, to be
        re-leased one per worker.
        """
        with self._lock:
            state = self._workers.pop(worker_id, None)
            if state is None or self._closing:
                if state is not None:
                    try:
                        state.conn.close()
                    except OSError:
                        pass  # repro: double-close race with the reader thread
                return
            self._hungry.discard(worker_id)
            self._counts["n_worker_deaths"] += 1
            outstanding = sorted(
                job_id for job_id in state.outstanding if job_id not in self._done
            )
            if state.steal_pending is not None:
                # A thief was waiting on this victim; park it hungry so the
                # requeue below (or a later death) feeds it.
                self._hungry.add(state.steal_pending[0])
            for other in self._workers.values():
                if other.steal_pending and other.steal_pending[0] == worker_id:
                    # The dead worker was a thief; let the victim keep its
                    # jobs and accept steals again.
                    other.steal_pending = None
            if len(outstanding) == 1 and outstanding[0] in self._suspects:
                job_id = outstanding[0]
                self._done.add(job_id)
                self._suspects.discard(job_id)
                self._counts["n_crash_markers"] += 1
                self._out.put(("record", job_id, WorkerCrash(job_id=job_id)))
            elif outstanding:
                self._suspects.update(outstanding)
                self._pending[:0] = outstanding
                self._counts["n_requeued_jobs"] += len(outstanding)
                self._feed_hungry()
        try:
            state.conn.close()
        except OSError:
            pass  # repro: double-close race with the reader thread
