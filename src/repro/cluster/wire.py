"""The cluster wire protocol: length-prefixed frames of strict-JSON messages.

Every frame on a coordinator/worker TCP connection is::

    u32 header_len | u32 payload_len | header (strict JSON) | payload (bytes)

(both lengths big-endian).  The header is one control message —
:class:`Register`, :class:`Welcome`, :class:`Task`, :class:`Lease`,
:class:`Heartbeat`, :class:`Steal`, :class:`Stolen`, :class:`Result`,
:class:`Crash`, or :class:`Shutdown` — encoded by its ``as_dict`` through
``json.dumps(..., allow_nan=False)``, so the control plane is inspectable
with any JSON tooling and survives the same strict-JSON round-trip contract
as every other record class in the library (the classes are registered with
:func:`repro.lint.register_contract_sample`).  The payload carries whatever
bulk bytes the message needs: pickled jobs for a lease, an encoded record
for a result, a pickled exception for a crash.

Record payloads reuse the PR-9 columnar encoding
(:func:`repro.execution.shm.encode_columnar_bytes`) whenever the record is
columnar — a numpy array or a dict of numpy columns travels as raw aligned
bytes, not a pickle — with strict JSON for scalars and pickle as the general
fallback.  :func:`encode_record` / :func:`decode_record` are strictly
value-preserving for every encoding, which is what lets the cluster backend
hold records bit-identical to :class:`~repro.execution.backends.SerialBackend`.
"""

from __future__ import annotations

import json
import pickle
import socket
import struct
from dataclasses import dataclass, fields
from typing import Any, ClassVar

from ..exceptions import ClusterProtocolError
from ..execution.shm import decode_columnar_bytes, encode_columnar_bytes

__all__ = [
    "Crash",
    "Heartbeat",
    "Lease",
    "MESSAGE_CLASSES",
    "RECORD_ENCODINGS",
    "Register",
    "Result",
    "Shutdown",
    "Steal",
    "Stolen",
    "Task",
    "Welcome",
    "decode_record",
    "encode_record",
    "recv_message",
    "send_message",
]

#: Hard ceiling on one frame's header or payload length.  A peer announcing
#: more is malformed (or hostile), not merely large: refusing up front turns
#: a would-be memory bomb into a loud :class:`ClusterProtocolError`.
MAX_FRAME_BYTES = 1 << 31

_HEADER = struct.Struct(">II")

#: Frame-header discriminator -> message class (filled by ``@wire_message``).
MESSAGE_CLASSES: dict[str, type] = {}


def _message_as_dict(self) -> dict:
    """JSON-native dict view, ``kind`` included (tuples become lists)."""
    payload: dict[str, Any] = {"kind": self.kind}
    for f in fields(self):
        value = getattr(self, f.name)
        payload[f.name] = list(value) if isinstance(value, tuple) else value
    return payload


def _message_from_dict(cls, data: dict):
    """Rebuild a message from :meth:`as_dict` output (``kind`` is checked)."""
    if data.get("kind") != cls.kind:
        raise ClusterProtocolError(
            f"message kind {data.get('kind')!r} does not match {cls.kind!r}"
        )
    kwargs = {}
    for f in fields(cls):
        value = data[f.name]
        kwargs[f.name] = tuple(value) if isinstance(value, list) else value
    return cls(**kwargs)


def wire_message(cls: type) -> type:
    """Make ``cls`` a frozen wire-message dataclass and register its kind.

    Installs ``as_dict``/``from_dict`` *on each class* (not a shared base)
    so :mod:`repro.lint`'s record discovery — which looks for the pair in a
    class's own ``vars()`` — walks every concrete message type through the
    strict-JSON round-trip, pickle, and address-free-repr audits.
    """
    cls = dataclass(frozen=True)(cls)
    cls.as_dict = _message_as_dict
    cls.from_dict = classmethod(_message_from_dict)
    MESSAGE_CLASSES[cls.kind] = cls
    return cls


@wire_message
class Register:
    """Worker -> coordinator: first frame on every connection."""

    kind: ClassVar[str] = "register"
    pid: int
    host: str


@wire_message
class Welcome:
    """Coordinator -> worker: registration accepted, here is your identity."""

    kind: ClassVar[str] = "welcome"
    worker_id: int
    heartbeat_s: float


@wire_message
class Task:
    """Coordinator -> worker: payload is the pickled ``run_one`` callable."""

    kind: ClassVar[str] = "task"


@wire_message
class Lease:
    """Coordinator -> worker: payload is the pickled tuple of leased jobs."""

    kind: ClassVar[str] = "lease"
    job_ids: tuple[int, ...]


@wire_message
class Heartbeat:
    """Worker -> coordinator: liveness plus what the worker is doing.

    ``current_job`` is ``-1`` when idle; ``n_queued`` counts leased jobs
    not yet started (the pool a :class:`Steal` can draw from).
    """

    kind: ClassVar[str] = "heartbeat"
    worker_id: int
    current_job: int
    n_queued: int


@wire_message
class Steal:
    """Coordinator -> worker: hand back up to ``max_jobs`` unstarted jobs."""

    kind: ClassVar[str] = "steal"
    max_jobs: int


@wire_message
class Stolen:
    """Worker -> coordinator: the jobs it gave back (possibly none).

    Only ids travel — the coordinator still owns the job objects it leased,
    so the response needs no payload.
    """

    kind: ClassVar[str] = "stolen"
    job_ids: tuple[int, ...]


@wire_message
class Result:
    """Worker -> coordinator: one finished job; payload is the record."""

    kind: ClassVar[str] = "result"
    job_id: int
    encoding: str


@wire_message
class Crash:
    """Worker -> coordinator: ``run_one`` raised; payload is the exception.

    This is the *in-protocol* failure path — the worker survived, the
    runner did not.  Per the :class:`~repro.execution.base.ExecutionBackend`
    contract the exception propagates to the submitting consumer.  A worker
    that dies outright never sends anything; the coordinator detects that
    by missed heartbeats or connection loss.
    """

    kind: ClassVar[str] = "crash"
    job_id: int
    message: str


@wire_message
class Shutdown:
    """Coordinator -> worker: the campaign is complete, stand down."""

    kind: ClassVar[str] = "shutdown"


def send_message(sock: socket.socket, message, payload: bytes = b"") -> None:
    """Write one frame: the message as strict JSON plus its payload bytes."""
    header = json.dumps(message.as_dict(), allow_nan=False).encode("utf-8")
    sock.sendall(_HEADER.pack(len(header), len(payload)) + header + payload)


def _recv_exact(sock: socket.socket, n_bytes: int) -> bytes:
    """Read exactly ``n_bytes``; raise ``EOFError`` on a closed peer."""
    chunks = []
    remaining = n_bytes
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise EOFError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> tuple[Any, bytes]:
    """Read one frame; returns the decoded message and its raw payload."""
    header_len, payload_len = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if header_len > MAX_FRAME_BYTES or payload_len > MAX_FRAME_BYTES:
        raise ClusterProtocolError(
            f"frame announces {header_len}+{payload_len} bytes, over the "
            f"{MAX_FRAME_BYTES}-byte ceiling — malformed or hostile peer"
        )
    raw_header = _recv_exact(sock, header_len)
    payload = _recv_exact(sock, payload_len) if payload_len else b""
    try:
        header = json.loads(raw_header.decode("utf-8"))
    except ValueError as exc:
        # UnicodeDecodeError and JSONDecodeError both: a peer that frames
        # correctly but speaks something other than our JSON control plane.
        raise ClusterProtocolError(
            f"frame header is not valid JSON: {exc}"
        ) from None
    if not isinstance(header, dict):
        raise ClusterProtocolError(
            f"frame header must be a JSON object, got {type(header).__name__}"
        )
    cls = MESSAGE_CLASSES.get(header.get("kind"))
    if cls is None:
        raise ClusterProtocolError(f"unknown message kind {header.get('kind')!r}")
    try:
        return cls.from_dict(header), payload
    except (KeyError, TypeError) as exc:
        raise ClusterProtocolError(
            f"malformed {header.get('kind')!r} frame: {exc!r}"
        ) from None


# ---------------------------------------------------------------------------
# Record payload encodings
# ---------------------------------------------------------------------------

#: Encodings a :class:`Result` payload may carry, in preference order.
RECORD_ENCODINGS = ("columnar", "strict-json", "pickle")


def encode_record(record: Any) -> tuple[str, bytes]:
    """Choose the cheapest value-preserving encoding for one record.

    Columnar records (numpy arrays, dicts of numpy columns) reuse the PR-9
    aligned-raw-bytes layout; JSON-native scalars travel as strict JSON
    (human-inspectable on the wire); everything else — campaign record
    dataclasses included — pickles.  All three round-trip bit-identically
    through :func:`decode_record`.
    """
    blob = encode_columnar_bytes(record)
    if blob is not None:
        return "columnar", blob
    if record is None or type(record) in (bool, int, str):
        return "strict-json", json.dumps(record, allow_nan=False).encode("utf-8")
    if type(record) is float:
        try:
            return "strict-json", json.dumps(record, allow_nan=False).encode("utf-8")
        except ValueError:
            # Non-finite float: strict JSON refuses it, pickle carries it.
            return "pickle", pickle.dumps(record)
    return "pickle", pickle.dumps(record)


def decode_record(encoding: str, payload: bytes) -> Any:
    """Invert :func:`encode_record`."""
    if encoding == "columnar":
        return decode_columnar_bytes(payload)
    if encoding == "strict-json":
        return json.loads(payload.decode("utf-8"))
    if encoding == "pickle":
        return pickle.loads(payload)
    raise ClusterProtocolError(
        f"unknown record encoding {encoding!r}; expected one of {RECORD_ENCODINGS}"
    )
