"""The cluster worker: connect, register, run leases, answer steals.

One worker process serves one coordinator connection at a time through
three threads: the main thread receives frames (leases extend the local
queue, steals pop its unstarted tail, shutdown ends the session), an
executor thread drains the queue through ``run_one`` and streams each
record back the moment it finishes, and a heartbeat thread beats every
``heartbeat_s`` so the coordinator can tell death from slowness.

Fault semantics match the other backends exactly: an injected worker
crash (:func:`repro.faults.inject_worker_faults`) hard-exits a spawned
worker process mid-job — the coordinator sees the connection drop and
runs its suspect re-lease protocol — while a *raising* runner sends an
in-protocol :class:`~repro.cluster.wire.Crash` so the exception
propagates to the submitting consumer, per the
:class:`~repro.execution.base.ExecutionBackend` contract.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time
from collections import deque
from typing import Any

from ..exceptions import ClusterProtocolError
from .wire import (
    Crash,
    Heartbeat,
    Lease,
    Register,
    Result,
    Shutdown,
    Steal,
    Stolen,
    Task,
    Welcome,
    encode_record,
    recv_message,
    send_message,
)

__all__ = ["worker_main"]

#: Delay between connection attempts while a coordinator is not (yet) up.
_RECONNECT_DELAY_S = 0.05

#: Per-attempt TCP connect timeout.  This bounds the *connect* only: once
#: the connection is up the socket goes back to blocking mode, because the
#: receive loop legitimately sits frameless for as long as the current job
#: runs (and while parked idle), and a lingering timeout would convict
#: every such quiet stretch as connection loss.
_CONNECT_ATTEMPT_TIMEOUT_S = 5.0


class _Session:
    """State shared by the three threads serving one connection."""

    def __init__(
        self,
        sock: socket.socket,
        run_one,
        worker_id: int,
        mute_after: int | None = None,
    ) -> None:
        self.sock = sock
        self.run_one = run_one
        self.worker_id = worker_id
        self.send_lock = threading.Lock()
        self.cond = threading.Condition()
        self.queue: deque = deque()
        self.current_job = -1
        self.stopping = False
        self.results_sent = 0
        self.mute_after = mute_after
        self.muted = False

    def send(self, message, payload: bytes = b"") -> None:
        with self.send_lock:
            send_message(self.sock, message, payload)

    def stop(self) -> None:
        with self.cond:
            self.stopping = True
            self.cond.notify_all()


def _executor_loop(session: _Session) -> None:
    """Run queued jobs in lease order, streaming each record back."""
    while True:
        with session.cond:
            while not session.queue and not session.stopping:
                session.cond.wait()
            if session.stopping and not session.queue:
                return
            job = session.queue.popleft()
            session.current_job = int(job.job_id)
        try:
            try:
                record = session.run_one(job)
            except Exception as exc:
                # The runner raised: per the backend contract this aborts
                # the submission, so ship the exception itself.  An
                # exception that refuses to pickle (holds a socket/lock,
                # broken __reduce__) must not kill this thread — the
                # heartbeats would keep beating and the campaign would
                # hang — so it degrades to a picklable surrogate.
                try:
                    blob = pickle.dumps(exc)
                except Exception:
                    blob = pickle.dumps(
                        RuntimeError(f"{type(exc).__name__}: {exc}")
                    )
                session.send(
                    Crash(job_id=int(job.job_id), message=str(exc)), blob
                )
                continue
            encoding, payload = encode_record(record)
            session.send(
                Result(job_id=int(job.job_id), encoding=encoding), payload
            )
            session.results_sent += 1
            if (
                session.mute_after is not None
                and session.results_sent >= session.mute_after
            ):
                session.muted = True
        except OSError:
            # Connection gone mid-send (coordinator died, or it declared us
            # dead and closed the socket): this session is over.
            session.stop()
            return
        finally:
            with session.cond:
                session.current_job = -1


def _heartbeat_loop(session: _Session, heartbeat_s: float) -> None:
    while True:
        with session.cond:
            if session.stopping:
                return
            beat = Heartbeat(
                worker_id=session.worker_id,
                current_job=session.current_job,
                n_queued=len(session.queue),
            )
        if not session.muted:
            try:
                session.send(beat)
            except OSError:
                return  # connection gone; the receive loop notices too
        time.sleep(heartbeat_s)


def _serve_session(
    sock: socket.socket, mute_heartbeats_after: int | None
) -> bool:
    """Serve one coordinator connection; ``True`` if it ended in Shutdown."""
    send_message(sock, Register(pid=os.getpid(), host=socket.gethostname()))
    welcome, _ = recv_message(sock)
    if not isinstance(welcome, Welcome):
        raise ClusterProtocolError(f"expected welcome, got {welcome.kind}")
    task, task_blob = recv_message(sock)
    if not isinstance(task, Task):
        raise ClusterProtocolError(f"expected task, got {task.kind}")
    session = _Session(
        sock,
        pickle.loads(task_blob),
        welcome.worker_id,
        mute_after=mute_heartbeats_after,
    )
    executor = threading.Thread(target=_executor_loop, args=(session,), daemon=True)
    executor.start()
    threading.Thread(
        target=_heartbeat_loop,
        args=(session, welcome.heartbeat_s),
        daemon=True,
    ).start()
    clean = False
    try:
        while True:
            message, payload = recv_message(sock)
            if isinstance(message, Lease):
                jobs = pickle.loads(payload)
                with session.cond:
                    session.queue.extend(jobs)
                    session.cond.notify_all()
            elif isinstance(message, Steal):
                with session.cond:
                    handed = []
                    while session.queue and len(handed) < message.max_jobs:
                        handed.append(session.queue.pop())
                session.send(
                    Stolen(job_ids=tuple(int(job.job_id) for job in handed))
                )
            elif isinstance(message, Shutdown):
                clean = True
                return True
            else:
                raise ClusterProtocolError(
                    f"unexpected {message.kind} frame from the coordinator"
                )
    finally:
        session.stop()
        # On a clean shutdown the queue is already empty and the executor
        # idle; on connection loss it may be mid-job — give it a moment to
        # notice the dead socket, but never hang the reconnect loop on it.
        executor.join(timeout=5.0 if clean else 1.0)
    return clean


def worker_main(
    host: str,
    port: int,
    reconnect: bool = False,
    serve_forever: bool = False,
    connect_timeout_s: float = 30.0,
    mute_heartbeats_after: int | None = None,
) -> None:
    """Run a cluster worker against ``host:port`` until told to stop.

    Parameters
    ----------
    reconnect:
        Retry the connection after *connection loss* (a dead or departed
        coordinator, or being declared dead after muted heartbeats).  A
        clean ``Shutdown`` still ends the worker unless ``serve_forever``.
    serve_forever:
        Keep reconnecting even after clean shutdowns, serving successive
        campaigns (the ``--loop`` CLI mode for long-lived remote workers).
    connect_timeout_s:
        How long each (re)connection attempt cycle may take before the
        worker gives up with :class:`~repro.exceptions.ClusterProtocolError`.
    mute_heartbeats_after:
        Test hook: stop heartbeating after this many results have been
        sent, so chaos tests can exercise the coordinator's missed-beat
        death path against a worker that is actually still alive.
    """
    while True:
        deadline = time.monotonic() + connect_timeout_s
        sock = None
        while sock is None:
            try:
                sock = socket.create_connection(
                    (host, int(port)), timeout=_CONNECT_ATTEMPT_TIMEOUT_S
                )
            except OSError:
                if time.monotonic() > deadline:
                    raise ClusterProtocolError(
                        f"could not reach a coordinator at {host}:{port} "
                        f"within {connect_timeout_s:.0f}s"
                    ) from None
                time.sleep(_RECONNECT_DELAY_S)
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        clean = False
        try:
            clean = _serve_session(sock, mute_heartbeats_after)
        except (EOFError, ConnectionError, OSError):
            pass  # coordinator went away mid-session; maybe reconnect
        finally:
            try:
                sock.close()
            except OSError:
                pass  # repro: already closed by the peer
        if clean and not serve_forever:
            return
        if not clean and not reconnect:
            return


def _local_worker(host: str, port: int, mute_heartbeats_after: int | None = None) -> None:
    """Spawn target for :class:`~repro.cluster.backend.LocalCluster` workers."""
    worker_main(
        host,
        port,
        reconnect=True,
        mute_heartbeats_after=mute_heartbeats_after,
    )
