"""Image filtering primitives for the baseline pipeline (numpy only).

The paper's baseline uses OpenCV's Canny edge detector and Hough transform;
this reproduction implements the same mathematics from scratch so that the
library has no image-processing dependency.  This module provides the two
primitives Canny needs: separable Gaussian smoothing and Sobel gradients.
All filters use reflective boundary handling.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import BaselineError


def gaussian_kernel_1d(sigma: float, truncate: float = 3.0) -> np.ndarray:
    """Normalised 1-D Gaussian kernel with radius ``truncate * sigma``."""
    if sigma <= 0:
        raise BaselineError("sigma must be positive")
    radius = max(1, int(truncate * sigma + 0.5))
    offsets = np.arange(-radius, radius + 1, dtype=float)
    kernel = np.exp(-0.5 * (offsets / sigma) ** 2)
    return kernel / kernel.sum()


def _convolve_rows(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    radius = kernel.size // 2
    padded = np.pad(image, ((0, 0), (radius, radius)), mode="reflect")
    output = np.zeros_like(image, dtype=float)
    for offset in range(kernel.size):
        output += kernel[offset] * padded[:, offset : offset + image.shape[1]]
    return output


def _convolve_cols(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    radius = kernel.size // 2
    padded = np.pad(image, ((radius, radius), (0, 0)), mode="reflect")
    output = np.zeros_like(image, dtype=float)
    for offset in range(kernel.size):
        output += kernel[offset] * padded[offset : offset + image.shape[0], :]
    return output


def gaussian_blur(image: np.ndarray, sigma: float) -> np.ndarray:
    """Separable Gaussian blur with reflective boundaries."""
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise BaselineError(f"expected a 2-D image, got shape {image.shape}")
    if sigma == 0:
        return image.copy()
    kernel = gaussian_kernel_1d(sigma)
    return _convolve_cols(_convolve_rows(image, kernel), kernel)


def correlate2d(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Direct 2-D cross-correlation with reflective boundaries (small kernels)."""
    image = np.asarray(image, dtype=float)
    kernel = np.asarray(kernel, dtype=float)
    if image.ndim != 2 or kernel.ndim != 2:
        raise BaselineError("correlate2d expects 2-D image and kernel")
    kr, kc = kernel.shape
    pad_r, pad_c = kr // 2, kc // 2
    padded = np.pad(image, ((pad_r, pad_r), (pad_c, pad_c)), mode="reflect")
    output = np.zeros_like(image, dtype=float)
    for dr in range(kr):
        for dc in range(kc):
            output += kernel[dr, dc] * padded[
                dr : dr + image.shape[0], dc : dc + image.shape[1]
            ]
    return output


def convolve2d(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Direct 2-D convolution (kernel flipped) with reflective boundaries."""
    kernel = np.asarray(kernel, dtype=float)
    if kernel.ndim != 2:
        raise BaselineError("convolve2d expects a 2-D kernel")
    return correlate2d(image, kernel[::-1, ::-1])


#: Sobel kernel responding to gradients along the column (x) axis.
SOBEL_X = np.array([[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]])

#: Sobel kernel responding to gradients along the row (y) axis.
SOBEL_Y = np.array([[-1.0, -2.0, -1.0], [0.0, 0.0, 0.0], [1.0, 2.0, 1.0]])


def sobel_gradients(image: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Sobel gradients: returns ``(gx, gy, magnitude, direction)``.

    ``direction`` is in radians in ``(-pi, pi]``, measured from the +x
    (column) axis towards the +y (row) axis.
    """
    image = np.asarray(image, dtype=float)
    gx = correlate2d(image, SOBEL_X)
    gy = correlate2d(image, SOBEL_Y)
    magnitude = np.hypot(gx, gy)
    direction = np.arctan2(gy, gx)
    return gx, gy, magnitude, direction


def normalize_image(image: np.ndarray) -> np.ndarray:
    """Scale an image to the [0, 1] range (constant images map to zeros)."""
    image = np.asarray(image, dtype=float)
    lo = float(np.min(image))
    hi = float(np.max(image))
    if hi - lo <= 0:
        return np.zeros_like(image)
    return (image - lo) / (hi - lo)
