"""The conventional baseline: full-CSD acquisition + Canny + Hough (§3, §5.1).

The baseline the paper compares against (refs [12, 18]) works in three steps:

1. acquire the *complete* charge-stability diagram by probing every pixel —
   this is where essentially all of its runtime goes, because each pixel
   costs a dwell time;
2. detect edges with the Canny detector;
3. find the two dominant transition lines with a Hough transform, classify
   them into the steep (x-axis dot) and shallow (y-axis dot) line by their
   normal angle, and convert their slopes into the virtualization matrix.

The implementation mirrors the fast extractor's interface: it consumes an
:class:`~repro.instrument.session.ExperimentSession` (so probes and simulated
runtime are accounted identically) and returns an
:class:`~repro.core.result.ExtractionResult` with ``method="hough-baseline"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.result import ExtractionResult, ProbeStatistics
from ..core.virtualization import VirtualizationMatrix
from ..exceptions import BaselineError, ExtractionError
from ..instrument.measurement import ChargeSensorMeter
from ..instrument.session import ExperimentSession
from .canny import CannyConfig, CannyEdgeDetector
from .hough import HoughConfig, HoughLine, HoughTransform

#: Name used in result records and report tables.
BASELINE_METHOD_NAME = "hough-baseline"


@dataclass(frozen=True)
class BaselineConfig:
    """Configuration of the Canny + Hough baseline pipeline."""

    canny: CannyConfig = field(default_factory=CannyConfig)
    hough: HoughConfig = field(default_factory=HoughConfig)
    steep_theta_max_deg: float = 45.0
    min_steep_slope_magnitude: float = 1.0
    max_shallow_slope_magnitude: float = 1.0
    max_alpha: float = 1.5
    min_edge_pixels: int = 20

    def __post_init__(self) -> None:
        if not 0 < self.steep_theta_max_deg < 90:
            raise BaselineError("steep_theta_max_deg must lie in (0, 90)")
        if self.min_edge_pixels < 1:
            raise BaselineError("min_edge_pixels must be at least 1")


class HoughBaselineExtractor:
    """Full-scan virtual gate extraction with Canny edges and Hough lines."""

    def __init__(self, config: BaselineConfig | None = None) -> None:
        self._config = config or BaselineConfig()
        self._canny = CannyEdgeDetector(self._config.canny)
        self._hough = HoughTransform(self._config.hough)

    @property
    def config(self) -> BaselineConfig:
        """The baseline configuration."""
        return self._config

    # ------------------------------------------------------------------
    def extract(
        self, target: ExperimentSession | ChargeSensorMeter
    ) -> ExtractionResult:
        """Acquire the full CSD and extract the virtualization matrix."""
        meter = target.meter if isinstance(target, ExperimentSession) else target
        gate_x, gate_y = self._gate_names(meter)
        try:
            image = meter.acquire_full_grid()
            edges = self._canny.detect(image)
            matrix, slopes, lines = self._lines_to_matrix(meter, edges, gate_x, gate_y)
        except (BaselineError, ExtractionError) as exc:
            return ExtractionResult(
                success=False,
                method=BASELINE_METHOD_NAME,
                matrix=None,
                slopes=None,
                probe_stats=self._probe_stats(meter),
                failure_reason=str(exc),
                metadata={"n_edge_pixels": None},
            )
        failure = self._validate(matrix, slopes)
        return ExtractionResult(
            success=failure is None,
            method=BASELINE_METHOD_NAME,
            matrix=matrix,
            slopes=slopes,
            probe_stats=self._probe_stats(meter),
            failure_reason=failure or "",
            metadata={
                "n_edge_pixels": int(np.count_nonzero(edges)),
                "n_hough_lines": len(lines),
            },
        )

    # ------------------------------------------------------------------
    def _lines_to_matrix(
        self,
        meter: ChargeSensorMeter,
        edges: np.ndarray,
        gate_x: str,
        gate_y: str,
    ) -> tuple[VirtualizationMatrix, tuple[float, float], list[HoughLine]]:
        cfg = self._config
        n_edges = int(np.count_nonzero(edges))
        if n_edges < cfg.min_edge_pixels:
            raise BaselineError(
                f"Canny found only {n_edges} edge pixels "
                f"(need at least {cfg.min_edge_pixels}) — cannot establish the lines"
            )
        lines = self._hough.find_lines(edges)
        if not lines:
            raise BaselineError("Hough transform found no significant lines")
        x_step = float(meter.x_voltages[1] - meter.x_voltages[0])
        y_step = float(meter.y_voltages[1] - meter.y_voltages[0])
        steep_candidates: list[HoughLine] = []
        shallow_candidates: list[HoughLine] = []
        for line in lines:
            theta = line.theta_deg
            # Negative-slope lines have normal angles strictly inside (0, 90).
            if not 0.0 < theta < 90.0:
                continue
            if theta <= cfg.steep_theta_max_deg:
                steep_candidates.append(line)
            else:
                shallow_candidates.append(line)
        if not steep_candidates:
            raise BaselineError(
                "no steep (nearly vertical, negative-slope) transition line detected"
            )
        if not shallow_candidates:
            raise BaselineError(
                "no shallow (nearly horizontal, negative-slope) transition line detected"
            )
        steep = max(steep_candidates, key=lambda line: line.votes)
        shallow = max(shallow_candidates, key=lambda line: line.votes)
        slope_steep = steep.slope_voltage(x_step, y_step)
        slope_shallow = shallow.slope_voltage(x_step, y_step)
        matrix = VirtualizationMatrix.from_slopes(
            slope_steep=slope_steep,
            slope_shallow=slope_shallow,
            gate_x=gate_x,
            gate_y=gate_y,
        )
        return matrix, (slope_steep, slope_shallow), lines

    def _validate(
        self, matrix: VirtualizationMatrix, slopes: tuple[float, float]
    ) -> str | None:
        cfg = self._config
        slope_steep, slope_shallow = slopes
        if not np.isfinite(slope_shallow):
            return "shallow slope is not finite"
        if slope_steep >= 0 or slope_shallow >= 0:
            return (
                "detected slopes must both be negative; got "
                f"steep={slope_steep:.3f}, shallow={slope_shallow:.3f}"
            )
        if np.isfinite(slope_steep) and abs(slope_steep) < cfg.min_steep_slope_magnitude:
            return (
                f"steep slope magnitude {abs(slope_steep):.3f} below the physical "
                f"minimum {cfg.min_steep_slope_magnitude}"
            )
        if abs(slope_shallow) > cfg.max_shallow_slope_magnitude:
            return (
                f"shallow slope magnitude {abs(slope_shallow):.3f} above the physical "
                f"maximum {cfg.max_shallow_slope_magnitude}"
            )
        if not (0.0 <= matrix.alpha_12 <= cfg.max_alpha):
            return f"alpha_12 = {matrix.alpha_12:.3f} outside [0, {cfg.max_alpha}]"
        if not (0.0 <= matrix.alpha_21 <= cfg.max_alpha):
            return f"alpha_21 = {matrix.alpha_21:.3f} outside [0, {cfg.max_alpha}]"
        return None

    @staticmethod
    def _gate_names(meter: ChargeSensorMeter) -> tuple[str, str]:
        backend = meter.backend
        csd = getattr(backend, "csd", None)
        if csd is not None:
            return csd.gate_x, csd.gate_y
        gate_x = getattr(backend, "gate_x_name", None)
        gate_y = getattr(backend, "gate_y_name", None)
        if gate_x is not None and gate_y is not None:
            return str(gate_x), str(gate_y)
        return "P1", "P2"

    @staticmethod
    def _probe_stats(meter: ChargeSensorMeter) -> ProbeStatistics:
        return ProbeStatistics(
            n_probes=meter.n_probes,
            n_requests=meter.n_requests,
            n_pixels=meter.backend.n_pixels,
            elapsed_s=meter.elapsed_s,
        )
