"""The conventional baseline: full-CSD acquisition + Canny + Hough (§3, §5.1).

The baseline the paper compares against (refs [12, 18]) works in three steps:

1. acquire the *complete* charge-stability diagram by probing every pixel —
   this is where essentially all of its runtime goes, because each pixel
   costs a dwell time;
2. detect edges with the Canny detector;
3. find the two dominant transition lines with a Hough transform, classify
   them into the steep (x-axis dot) and shallow (y-axis dot) line by their
   normal angle, and convert their slopes into the virtualization matrix.

Since the pipeline refactor the sequence lives in
:mod:`repro.pipeline.baseline_stages` as the registered
``dense-grid-baseline`` composition; this class remains the stable public
front.  It mirrors the fast extractor's interface: it consumes an
:class:`~repro.instrument.session.ExperimentSession` (so probes and
simulated runtime are accounted identically, now per stage) and returns an
:class:`~repro.core.result.ExtractionResult` with ``method="hough-baseline"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.result import ExtractionResult
from ..exceptions import BaselineError
from ..instrument.measurement import ChargeSensorMeter
from ..instrument.session import ExperimentSession
from .canny import CannyConfig
from .hough import HoughConfig

#: Name used in result records and report tables.
BASELINE_METHOD_NAME = "hough-baseline"

#: Registry name of the stage composition behind this extractor.
BASELINE_PIPELINE_NAME = "dense-grid-baseline"


@dataclass(frozen=True)
class BaselineConfig:
    """Configuration of the Canny + Hough baseline pipeline."""

    canny: CannyConfig = field(default_factory=CannyConfig)
    hough: HoughConfig = field(default_factory=HoughConfig)
    steep_theta_max_deg: float = 45.0
    min_steep_slope_magnitude: float = 1.0
    max_shallow_slope_magnitude: float = 1.0
    max_alpha: float = 1.5
    min_edge_pixels: int = 20

    def __post_init__(self) -> None:
        if not 0 < self.steep_theta_max_deg < 90:
            raise BaselineError("steep_theta_max_deg must lie in (0, 90)")
        if self.min_edge_pixels < 1:
            raise BaselineError("min_edge_pixels must be at least 1")


class HoughBaselineExtractor:
    """Full-scan virtual gate extraction with Canny edges and Hough lines."""

    def __init__(self, config: BaselineConfig | None = None) -> None:
        self._config = config or BaselineConfig()

    @property
    def config(self) -> BaselineConfig:
        """The baseline configuration."""
        return self._config

    # ------------------------------------------------------------------
    def extract(
        self, target: ExperimentSession | ChargeSensorMeter
    ) -> ExtractionResult:
        """Acquire the full CSD and extract the virtualization matrix."""
        # Imported lazily: repro.pipeline composes this package's stages,
        # so a module-level import would be circular.
        from ..pipeline.registry import get_pipeline

        return get_pipeline(BASELINE_PIPELINE_NAME).run(target, config=self._config)
