"""Hough line transform implemented from scratch (baseline pipeline, stage 2).

Edge pixels vote in a ``(rho, theta)`` accumulator with
``rho = col * cos(theta) + row * sin(theta)``; straight transition lines show
up as accumulator peaks.  Peak picking uses a greedy non-maximum suppression
in accumulator space, and each peak can be converted back to a slope in pixel
coordinates (and, given the voltage steps of the CSD axes, to a slope in
voltage space).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import BaselineError


@dataclass(frozen=True)
class HoughLine:
    """One detected line: its normal parameters, votes, and pixel slope."""

    rho: float
    theta_rad: float
    votes: int

    @property
    def theta_deg(self) -> float:
        """Normal angle in degrees, in [0, 180)."""
        return float(np.degrees(self.theta_rad) % 180.0)

    @property
    def slope_pixels(self) -> float:
        """Slope ``d(row)/d(col)`` of the line in pixel coordinates.

        The line direction is perpendicular to the normal: for a normal angle
        ``theta`` the slope is ``-cos(theta)/sin(theta)``; vertical lines
        (``theta`` near 0 or 180 degrees) return ``+/- inf``.
        """
        sin_t = np.sin(self.theta_rad)
        cos_t = np.cos(self.theta_rad)
        if abs(sin_t) < 1e-12:
            return float("inf") if cos_t <= 0 else float("-inf")
        return float(-cos_t / sin_t)

    def slope_voltage(self, x_step: float, y_step: float) -> float:
        """Slope ``dVy/dVx`` given the voltage step per column and per row."""
        slope = self.slope_pixels
        if np.isinf(slope):
            return slope
        return slope * (y_step / x_step)


@dataclass(frozen=True)
class HoughConfig:
    """Parameters of the Hough transform and its peak picker."""

    theta_resolution_deg: float = 1.0
    rho_resolution_pixels: float = 1.0
    n_peaks: int = 8
    min_votes_fraction: float = 0.25
    neighborhood_theta_deg: float = 10.0
    neighborhood_rho_pixels: float = 10.0

    def __post_init__(self) -> None:
        if self.theta_resolution_deg <= 0 or self.rho_resolution_pixels <= 0:
            raise BaselineError("accumulator resolutions must be positive")
        if self.n_peaks < 1:
            raise BaselineError("n_peaks must be at least 1")
        if not 0 < self.min_votes_fraction <= 1:
            raise BaselineError("min_votes_fraction must lie in (0, 1]")


class HoughTransform:
    """Accumulate edge pixels and extract dominant straight lines."""

    def __init__(self, config: HoughConfig | None = None) -> None:
        self._config = config or HoughConfig()

    @property
    def config(self) -> HoughConfig:
        """The transform configuration."""
        return self._config

    # ------------------------------------------------------------------
    def accumulate(self, edges: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vote every edge pixel; returns ``(accumulator, thetas_rad, rhos)``."""
        edges = np.asarray(edges, dtype=bool)
        if edges.ndim != 2:
            raise BaselineError("edge map must be 2-D")
        rows, cols = edges.shape
        cfg = self._config
        thetas = np.deg2rad(np.arange(0.0, 180.0, cfg.theta_resolution_deg))
        diagonal = float(np.hypot(rows, cols))
        rhos = np.arange(-diagonal, diagonal + cfg.rho_resolution_pixels, cfg.rho_resolution_pixels)
        accumulator = np.zeros((rhos.size, thetas.size), dtype=np.int64)
        edge_rows, edge_cols = np.nonzero(edges)
        if edge_rows.size == 0:
            return accumulator, thetas, rhos
        cos_t = np.cos(thetas)
        sin_t = np.sin(thetas)
        # rho for every (pixel, theta) pair; digitise into accumulator bins.
        rho_values = np.outer(edge_cols, cos_t) + np.outer(edge_rows, sin_t)
        rho_indices = np.round((rho_values + diagonal) / cfg.rho_resolution_pixels).astype(int)
        rho_indices = np.clip(rho_indices, 0, rhos.size - 1)
        theta_indices = np.broadcast_to(np.arange(thetas.size), rho_indices.shape)
        np.add.at(accumulator, (rho_indices.ravel(), theta_indices.ravel()), 1)
        return accumulator, thetas, rhos

    def find_lines(self, edges: np.ndarray) -> list[HoughLine]:
        """Detect up to ``n_peaks`` dominant lines in an edge map."""
        accumulator, thetas, rhos = self.accumulate(edges)
        if accumulator.max() == 0:
            return []
        cfg = self._config
        working = accumulator.astype(float).copy()
        min_votes = cfg.min_votes_fraction * float(accumulator.max())
        theta_halfwidth = max(1, int(round(cfg.neighborhood_theta_deg / cfg.theta_resolution_deg)))
        rho_halfwidth = max(1, int(round(cfg.neighborhood_rho_pixels / cfg.rho_resolution_pixels)))
        lines: list[HoughLine] = []
        for _ in range(cfg.n_peaks):
            peak_index = int(np.argmax(working))
            rho_index, theta_index = np.unravel_index(peak_index, working.shape)
            votes = working[rho_index, theta_index]
            if votes < min_votes or votes <= 0:
                break
            lines.append(
                HoughLine(
                    rho=float(rhos[rho_index]),
                    theta_rad=float(thetas[theta_index]),
                    votes=int(accumulator[rho_index, theta_index]),
                )
            )
            # Suppress the neighbourhood of the accepted peak, including the
            # wrap-around in theta (0 and 180 degrees are the same line family).
            rho_lo = max(0, rho_index - rho_halfwidth)
            rho_hi = min(working.shape[0], rho_index + rho_halfwidth + 1)
            theta_lo = theta_index - theta_halfwidth
            theta_hi = theta_index + theta_halfwidth + 1
            theta_span = np.arange(theta_lo, theta_hi) % working.shape[1]
            working[rho_lo:rho_hi, theta_span] = -1.0
        return lines
