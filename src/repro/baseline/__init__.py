"""Baseline method: full-CSD acquisition + Canny edges + Hough transform.

Implemented from scratch on numpy (no OpenCV) so the comparison in the
evaluation exercises the same mathematical pipeline the paper's baseline
references use, while still paying for every pixel of the diagram.
"""

from .canny import CannyConfig, CannyEdgeDetector
from .extraction import BASELINE_METHOD_NAME, BaselineConfig, HoughBaselineExtractor
from .filters import (
    SOBEL_X,
    SOBEL_Y,
    convolve2d,
    correlate2d,
    gaussian_blur,
    gaussian_kernel_1d,
    normalize_image,
    sobel_gradients,
)
from .hough import HoughConfig, HoughLine, HoughTransform

__all__ = [
    "CannyConfig",
    "CannyEdgeDetector",
    "BASELINE_METHOD_NAME",
    "BaselineConfig",
    "HoughBaselineExtractor",
    "SOBEL_X",
    "SOBEL_Y",
    "convolve2d",
    "correlate2d",
    "gaussian_blur",
    "gaussian_kernel_1d",
    "normalize_image",
    "sobel_gradients",
    "HoughConfig",
    "HoughLine",
    "HoughTransform",
]
