"""Canny edge detection implemented from scratch (baseline pipeline, stage 1).

The classic five stages: Gaussian smoothing, Sobel gradients, non-maximum
suppression along the gradient direction, double thresholding, and edge
tracking by hysteresis.  Thresholds are expressed as fractions of the maximum
gradient magnitude, which makes the detector insensitive to the absolute
current scale of a charge-stability diagram.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import BaselineError
from .filters import gaussian_blur, normalize_image, sobel_gradients


@dataclass(frozen=True)
class CannyConfig:
    """Parameters of the Canny edge detector.

    Attributes
    ----------
    sigma:
        Standard deviation of the Gaussian pre-smoothing, in pixels.
    low_threshold_fraction, high_threshold_fraction:
        Hysteresis thresholds as fractions of the maximum gradient magnitude.
    """

    sigma: float = 1.4
    low_threshold_fraction: float = 0.10
    high_threshold_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise BaselineError("sigma must be positive")
        if not 0 < self.low_threshold_fraction < 1:
            raise BaselineError("low_threshold_fraction must lie in (0, 1)")
        if not 0 < self.high_threshold_fraction < 1:
            raise BaselineError("high_threshold_fraction must lie in (0, 1)")
        if self.low_threshold_fraction >= self.high_threshold_fraction:
            raise BaselineError("low threshold must be below the high threshold")


class CannyEdgeDetector:
    """Binary edge map from a charge-stability image."""

    def __init__(self, config: CannyConfig | None = None) -> None:
        self._config = config or CannyConfig()

    @property
    def config(self) -> CannyConfig:
        """The detector configuration."""
        return self._config

    # ------------------------------------------------------------------
    def detect(self, image: np.ndarray) -> np.ndarray:
        """Return a boolean edge map of the same shape as ``image``."""
        image = normalize_image(image)
        smoothed = gaussian_blur(image, self._config.sigma)
        _, _, magnitude, direction = sobel_gradients(smoothed)
        suppressed = self.non_maximum_suppression(magnitude, direction)
        strong, weak = self.double_threshold(suppressed)
        return self.hysteresis(strong, weak)

    # ------------------------------------------------------------------
    @staticmethod
    def non_maximum_suppression(magnitude: np.ndarray, direction: np.ndarray) -> np.ndarray:
        """Keep only pixels that are local maxima along their gradient direction."""
        rows, cols = magnitude.shape
        suppressed = np.zeros_like(magnitude)
        angle = np.rad2deg(direction) % 180.0
        padded = np.pad(magnitude, 1, mode="constant")
        # Neighbour offsets for the four quantised directions.
        for row in range(rows):
            for col in range(cols):
                a = angle[row, col]
                if a < 22.5 or a >= 157.5:
                    neighbours = (padded[row + 1, col], padded[row + 1, col + 2])
                elif a < 67.5:
                    neighbours = (padded[row, col], padded[row + 2, col + 2])
                elif a < 112.5:
                    neighbours = (padded[row, col + 1], padded[row + 2, col + 1])
                else:
                    neighbours = (padded[row, col + 2], padded[row + 2, col])
                value = magnitude[row, col]
                if value >= neighbours[0] and value >= neighbours[1]:
                    suppressed[row, col] = value
        return suppressed

    def double_threshold(self, suppressed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split suppressed magnitudes into strong and weak edge candidates."""
        peak = float(np.max(suppressed))
        if peak <= 0:
            empty = np.zeros_like(suppressed, dtype=bool)
            return empty, empty.copy()
        high = self._config.high_threshold_fraction * peak
        low = self._config.low_threshold_fraction * peak
        strong = suppressed >= high
        weak = (suppressed >= low) & ~strong
        return strong, weak

    @staticmethod
    def hysteresis(strong: np.ndarray, weak: np.ndarray) -> np.ndarray:
        """Keep weak pixels only when connected (8-neighbourhood) to strong ones."""
        rows, cols = strong.shape
        edges = strong.copy()
        stack = list(zip(*np.nonzero(strong)))
        weak_remaining = weak.copy()
        while stack:
            row, col = stack.pop()
            for dr in (-1, 0, 1):
                for dc in (-1, 0, 1):
                    if dr == 0 and dc == 0:
                        continue
                    r, c = row + dr, col + dc
                    if 0 <= r < rows and 0 <= c < cols and weak_remaining[r, c]:
                        weak_remaining[r, c] = False
                        edges[r, c] = True
                        stack.append((r, c))
        return edges
