"""Success criteria and accuracy/efficiency metrics for the evaluation.

The paper judges success by *manually* inspecting whether the affine-warped
(virtualized) diagram has axis-aligned transition lines.  With synthetic
benchmarks the ground-truth virtualization coefficients are known exactly, so
this module replaces the manual check with an equivalent automatic criterion:
an extraction is successful when its own internal checks passed *and* the
extracted coefficients are close to the ground truth (within an absolute or a
relative tolerance), which is precisely the condition under which the warped
lines look orthogonal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.result import ExtractionResult
from ..exceptions import ConfigurationError
from ..physics.csd import TransitionLineGeometry


@dataclass(frozen=True)
class SuccessCriterion:
    """Tolerance used to declare an extraction successful against ground truth.

    An extracted coefficient matches if it is within ``max_alpha_abs_error``
    of the true value *or* within ``max_alpha_rel_error`` relative error; the
    extraction succeeds when both coefficients match and the extractor's own
    sanity checks passed.
    """

    max_alpha_abs_error: float = 0.08
    max_alpha_rel_error: float = 0.35
    #: Denominator floor of the relative-error branch.  Without it a
    #: near-zero (but non-zero) ground truth makes ``abs_error / |true|``
    #: overflow; with it, couplings below the floor are judged by the
    #: absolute branch alone — exactly how a truly-zero truth is handled.
    rel_error_denominator_floor: float = 1e-6

    def alpha_matches(self, extracted: float, true_value: float) -> bool:
        """Whether one extracted coefficient is acceptably close to the truth."""
        if not np.isfinite(extracted):
            return False
        abs_error = abs(extracted - true_value)
        if abs_error <= self.max_alpha_abs_error:
            return True
        denominator = abs(true_value)
        if denominator < self.rel_error_denominator_floor:
            return False
        return abs_error / denominator <= self.max_alpha_rel_error

    def evaluate(
        self, result: ExtractionResult, geometry: TransitionLineGeometry | None
    ) -> bool:
        """Final success verdict for one extraction run."""
        if not result.success or result.matrix is None:
            return False
        if geometry is None:
            # Without ground truth fall back to the extractor's own verdict.
            return result.success
        return self.alpha_matches(
            result.matrix.alpha_12, geometry.alpha_12
        ) and self.alpha_matches(result.matrix.alpha_21, geometry.alpha_21)


@dataclass(frozen=True)
class AccuracyMetrics:
    """Coefficient and slope errors of one extraction against ground truth."""

    alpha_12_error: float
    alpha_21_error: float
    slope_steep_error: float
    slope_shallow_error: float
    orthogonality_error_deg: float

    @property
    def max_alpha_error(self) -> float:
        """Worse of the two coefficient errors."""
        return max(self.alpha_12_error, self.alpha_21_error)


def accuracy_metrics(
    result: ExtractionResult, geometry: TransitionLineGeometry
) -> AccuracyMetrics:
    """Compute accuracy metrics; infinite errors when extraction failed."""
    if result.matrix is None or result.slopes is None:
        inf = float("inf")
        return AccuracyMetrics(inf, inf, inf, inf, inf)
    alpha_12_error = abs(result.matrix.alpha_12 - geometry.alpha_12)
    alpha_21_error = abs(result.matrix.alpha_21 - geometry.alpha_21)
    slope_steep_error = abs(result.slopes[0] - geometry.slope_steep)
    slope_shallow_error = abs(result.slopes[1] - geometry.slope_shallow)
    orthogonality = result.matrix.orthogonality_error(
        geometry.slope_steep, geometry.slope_shallow
    )
    return AccuracyMetrics(
        alpha_12_error=alpha_12_error,
        alpha_21_error=alpha_21_error,
        slope_steep_error=slope_steep_error,
        slope_shallow_error=slope_shallow_error,
        orthogonality_error_deg=orthogonality,
    )


def speedup(baseline_elapsed_s: float, fast_elapsed_s: float) -> float:
    """Wall-clock speedup of the fast method over the baseline.

    ``nan`` when both costs are zero (an empty run has no defined speedup),
    ``inf`` when only the fast cost is zero.
    """
    if fast_elapsed_s <= 0:
        return float("nan") if baseline_elapsed_s <= 0 else float("inf")
    return baseline_elapsed_s / fast_elapsed_s


def probe_reduction(baseline_probes: int, fast_probes: int) -> float:
    """Factor by which the number of probed points is reduced.

    ``nan`` when both counts are zero, ``inf`` when only the fast count is.
    """
    if fast_probes <= 0:
        return float("nan") if baseline_probes <= 0 else float("inf")
    return baseline_probes / float(fast_probes)


def wilson_interval(
    n_success: int, n_total: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score confidence interval for a success proportion.

    The interval of choice for the small per-region counts a success
    surface aggregates: unlike the normal approximation it never escapes
    [0, 1] and stays informative at 0/n and n/n.  ``(0, 1)`` for an empty
    region — no evidence constrains nothing.
    """
    if n_total < 0 or n_success < 0 or n_success > n_total:
        raise ConfigurationError(
            f"need 0 <= n_success <= n_total, got {n_success}/{n_total}"
        )
    if z <= 0:
        raise ConfigurationError(f"z must be positive, got {z!r}")
    if n_total == 0:
        return (0.0, 1.0)
    p = n_success / n_total
    denom = 1.0 + z * z / n_total
    centre = (p + z * z / (2.0 * n_total)) / denom
    margin = (
        z * np.sqrt(p * (1.0 - p) / n_total + z * z / (4.0 * n_total * n_total))
    ) / denom
    return (max(0.0, centre - margin), min(1.0, centre + margin))
