"""Experiment runners: one function per reproduced table, figure, or ablation.

Each runner builds its workload from the synthetic substrate, executes the
relevant method(s), and returns plain data structures plus a formatted text
report.  The benchmark harness (``benchmarks/``) and the example scripts call
these functions, and EXPERIMENTS.md records their output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.array_extraction import ArrayVirtualGateExtractor
from ..core.config import AnchorConfig, ExtractionConfig, SweepConfig
from ..core.extraction import FastVirtualGateExtractor
from ..datasets.qflow import load_benchmark, load_suite
from ..datasets.synthetic import NoiseRecipe, SyntheticCSDConfig
from ..instrument.session import ExperimentSession
from ..physics.dot_array import DotArrayDevice
from .comparison import BenchmarkRecord, ComparisonRunner
from .metrics import SuccessCriterion, accuracy_metrics
from .reporting import format_summary, format_table, format_table1, summarize_suite


# ----------------------------------------------------------------------
# E1 / E3: Table 1 and the headline speedup claim
# ----------------------------------------------------------------------
def run_table1(indices: tuple[int, ...] | None = None) -> tuple[list[BenchmarkRecord], str]:
    """Reproduce Table 1 over the full suite (or a subset of 1-based indices)."""
    if indices is None:
        suite = load_suite()
        records = ComparisonRunner().run_suite(suite)
    else:
        runner = ComparisonRunner()
        records = [
            runner.run_benchmark(load_benchmark(i), index=i) for i in indices
        ]
    summary = summarize_suite(records)
    report = format_table1(records) + "\n\n" + format_summary(summary)
    return records, report


# ----------------------------------------------------------------------
# E2: Figure 7 — probed points of selected benchmarks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProbeMapResult:
    """Probe map of the fast extraction on one benchmark (Figure 7)."""

    index: int
    name: str
    shape: tuple[int, int]
    probe_mask: np.ndarray
    n_probes: int
    probe_fraction: float
    success: bool


def run_figure7(indices: tuple[int, ...] = (6, 10)) -> list[ProbeMapResult]:
    """Reproduce Figure 7: which pixels the fast method probes on CSD 6 and 10."""
    results = []
    for index in indices:
        csd = load_benchmark(index)
        session = ExperimentSession.from_csd(csd)
        extraction = FastVirtualGateExtractor().extract(session)
        mask = session.meter.log.probe_mask(csd.shape)
        results.append(
            ProbeMapResult(
                index=index,
                name=str(csd.metadata.get("name", f"benchmark-{index}")),
                shape=csd.shape,
                probe_mask=mask,
                n_probes=extraction.probe_stats.n_probes,
                probe_fraction=extraction.probe_stats.probe_fraction,
                success=extraction.success,
            )
        )
    return results


# ----------------------------------------------------------------------
# A1: sweep / post-processing ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AblationRow:
    """One configuration of an ablation study, aggregated over benchmarks."""

    label: str
    success_rate: float
    mean_alpha_error: float
    mean_probe_fraction: float
    details: dict = field(default_factory=dict)


def _evaluate_config_on_suite(
    config: ExtractionConfig,
    indices: tuple[int, ...],
    criterion: SuccessCriterion | None = None,
) -> tuple[float, float, float]:
    criterion = criterion or SuccessCriterion()
    successes = 0
    alpha_errors: list[float] = []
    fractions: list[float] = []
    for index in indices:
        csd = load_benchmark(index)
        session = ExperimentSession.from_csd(csd)
        result = FastVirtualGateExtractor(config).extract(session)
        geometry = csd.geometry
        if criterion.evaluate(result, geometry):
            successes += 1
        if geometry is not None:
            metrics = accuracy_metrics(result, geometry)
            if np.isfinite(metrics.max_alpha_error):
                alpha_errors.append(metrics.max_alpha_error)
        fractions.append(result.probe_stats.probe_fraction)
    success_rate = successes / float(len(indices))
    mean_error = float(np.mean(alpha_errors)) if alpha_errors else float("inf")
    mean_fraction = float(np.mean(fractions)) if fractions else 0.0
    return success_rate, mean_error, mean_fraction


#: Benchmarks used for ablations: the ten that are not pathological-noise cases.
ABLATION_INDICES: tuple[int, ...] = (3, 4, 5, 6, 7, 8, 9, 10, 11, 12)


def run_ablation_sweeps(
    indices: tuple[int, ...] = ABLATION_INDICES,
) -> tuple[list[AblationRow], str]:
    """Ablate the sweep directions and the erroneous-point filter (§4.3.2)."""
    base = ExtractionConfig.paper_defaults()
    variants = [
        ("both sweeps + filter (paper)", base),
        (
            "row sweep only",
            base.replace(sweeps=SweepConfig(run_row_sweep=True, run_column_sweep=False)),
        ),
        (
            "column sweep only",
            base.replace(sweeps=SweepConfig(run_row_sweep=False, run_column_sweep=True)),
        ),
        (
            "both sweeps, no filter",
            base.replace(sweeps=SweepConfig(apply_postprocess=False)),
        ),
    ]
    rows = []
    for label, config in variants:
        success_rate, mean_error, mean_fraction = _evaluate_config_on_suite(config, indices)
        rows.append(
            AblationRow(
                label=label,
                success_rate=success_rate,
                mean_alpha_error=mean_error,
                mean_probe_fraction=mean_fraction,
            )
        )
    report = _format_ablation(rows, title="Ablation: sweeps and post-processing")
    return rows, report


def run_ablation_anchors(
    indices: tuple[int, ...] = ABLATION_INDICES,
) -> tuple[list[AblationRow], str]:
    """Ablate the anchor preprocessing (§4.4): Gaussian weighting and margin."""
    base = ExtractionConfig.paper_defaults()
    variants = [
        ("paper anchors (masks + Gaussian)", base),
        (
            "no Gaussian weighting",
            base.replace(anchors=AnchorConfig(gaussian_sigma_fraction=2.0)),
        ),
        (
            "narrow Gaussian prior",
            base.replace(anchors=AnchorConfig(gaussian_sigma_fraction=0.10)),
        ),
        (
            "no start margin",
            base.replace(anchors=AnchorConfig(start_margin_fraction=0.0)),
        ),
    ]
    rows = []
    for label, config in variants:
        success_rate, mean_error, mean_fraction = _evaluate_config_on_suite(config, indices)
        rows.append(
            AblationRow(
                label=label,
                success_rate=success_rate,
                mean_alpha_error=mean_error,
                mean_probe_fraction=mean_fraction,
            )
        )
    report = _format_ablation(rows, title="Ablation: anchor preprocessing")
    return rows, report


def _format_ablation(rows: list[AblationRow], title: str) -> str:
    headers = ["configuration", "success rate", "mean |alpha error|", "mean probe fraction"]
    table_rows = [
        [
            row.label,
            f"{100.0 * row.success_rate:.0f}%",
            f"{row.mean_alpha_error:.4f}" if np.isfinite(row.mean_alpha_error) else "inf",
            f"{100.0 * row.mean_probe_fraction:.1f}%",
        ]
        for row in rows
    ]
    return format_table(headers, table_rows, title=title)


# ----------------------------------------------------------------------
# A3: robustness against noise amplitude
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NoiseSweepRow:
    """Outcome of the fast extraction at one noise amplitude."""

    noise_scale: float
    success_rate: float
    mean_alpha_error: float
    mean_probe_fraction: float


def run_noise_sweep(
    noise_scales: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
    resolution: int = 100,
    n_seeds: int = 3,
) -> tuple[list[NoiseSweepRow], str]:
    """Success rate of the fast method as the noise floor grows (robustness)."""
    criterion = SuccessCriterion()
    rows = []
    for scale in noise_scales:
        successes = 0
        errors: list[float] = []
        fractions: list[float] = []
        for seed in range(n_seeds):
            config = SyntheticCSDConfig(
                name=f"noise-sweep-{scale:g}-{seed}",
                resolution=resolution,
                cross_coupling=(0.26, 0.22),
                noise=NoiseRecipe(
                    white_sigma_na=0.012 * scale,
                    pink_sigma_na=0.015 * scale,
                    drift_na=0.02 * scale,
                ),
                seed=1000 + seed,
            )
            csd = config.build_csd()
            session = ExperimentSession.from_csd(csd)
            result = FastVirtualGateExtractor().extract(session)
            if criterion.evaluate(result, csd.geometry):
                successes += 1
            if csd.geometry is not None:
                metrics = accuracy_metrics(result, csd.geometry)
                if np.isfinite(metrics.max_alpha_error):
                    errors.append(metrics.max_alpha_error)
            fractions.append(result.probe_stats.probe_fraction)
        rows.append(
            NoiseSweepRow(
                noise_scale=scale,
                success_rate=successes / float(n_seeds),
                mean_alpha_error=float(np.mean(errors)) if errors else float("inf"),
                mean_probe_fraction=float(np.mean(fractions)),
            )
        )
    headers = ["noise scale", "success rate", "mean |alpha error|", "probe fraction"]
    table_rows = [
        [
            f"{row.noise_scale:g}x",
            f"{100.0 * row.success_rate:.0f}%",
            f"{row.mean_alpha_error:.4f}" if np.isfinite(row.mean_alpha_error) else "inf",
            f"{100.0 * row.mean_probe_fraction:.1f}%",
        ]
        for row in rows
    ]
    report = format_table(headers, table_rows, title="Noise robustness of the fast extraction")
    return rows, report


# ----------------------------------------------------------------------
# A4: resolution scaling
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ResolutionScalingRow:
    """Cost of both methods at one CSD resolution."""

    resolution: int
    fast_probes: int
    fast_fraction: float
    fast_elapsed_s: float
    baseline_elapsed_s: float
    speedup: float


def run_resolution_scaling(
    resolutions: tuple[int, ...] = (63, 100, 150, 200),
    seed: int = 7,
) -> tuple[list[ResolutionScalingRow], str]:
    """Probe fraction and speedup as a function of scan resolution."""
    runner = ComparisonRunner()
    rows = []
    for resolution in resolutions:
        config = SyntheticCSDConfig(
            name=f"resolution-{resolution}",
            resolution=resolution,
            cross_coupling=(0.26, 0.22),
            seed=seed,
        )
        record = runner.run_benchmark(config.build_csd(), index=resolution)
        rows.append(
            ResolutionScalingRow(
                resolution=resolution,
                fast_probes=record.fast.n_probes,
                fast_fraction=record.fast.probe_fraction,
                fast_elapsed_s=record.fast.elapsed_s,
                baseline_elapsed_s=record.baseline.elapsed_s,
                speedup=record.speedup if record.speedup is not None else float("nan"),
            )
        )
    headers = ["resolution", "fast probes", "probe fraction", "fast runtime", "baseline runtime", "speedup"]
    table_rows = [
        [
            f"{row.resolution}x{row.resolution}",
            str(row.fast_probes),
            f"{100.0 * row.fast_fraction:.1f}%",
            f"{row.fast_elapsed_s:.1f}s",
            f"{row.baseline_elapsed_s:.1f}s",
            f"{row.speedup:.2f}x",
        ]
        for row in rows
    ]
    report = format_table(headers, table_rows, title="Scaling with CSD resolution")
    return rows, report


# ----------------------------------------------------------------------
# E6: n-dot array extraction
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArrayScalingRow:
    """Cost and accuracy of the array extension for one array size."""

    n_dots: int
    n_pairs: int
    total_probes: int
    total_elapsed_s: float
    max_alpha_error: float
    all_pairs_succeeded: bool


def run_array_scaling(
    dot_counts: tuple[int, ...] = (2, 3, 4),
    resolution: int = 80,
) -> tuple[list[ArrayScalingRow], str]:
    """Sequential pairwise extraction cost for growing linear arrays (§2.3)."""
    rows = []
    for n_dots in dot_counts:
        device = DotArrayDevice.linear_array(n_dots=n_dots)
        extractor = ArrayVirtualGateExtractor(resolution=resolution, seed=42)
        outcome = extractor.extract(device)
        rows.append(
            ArrayScalingRow(
                n_dots=n_dots,
                n_pairs=outcome.n_pairs,
                total_probes=outcome.total_probes,
                total_elapsed_s=outcome.total_elapsed_s,
                max_alpha_error=outcome.max_alpha_error(),
                all_pairs_succeeded=outcome.all_pairs_succeeded,
            )
        )
    headers = ["dots", "pairs", "total probes", "total runtime", "max |alpha error|", "all pairs ok"]
    table_rows = [
        [
            str(row.n_dots),
            str(row.n_pairs),
            str(row.total_probes),
            f"{row.total_elapsed_s:.1f}s",
            f"{row.max_alpha_error:.4f}" if np.isfinite(row.max_alpha_error) else "inf",
            "yes" if row.all_pairs_succeeded else "no",
        ]
        for row in rows
    ]
    report = format_table(headers, table_rows, title="n-dot array extraction (sequential pairwise)")
    return rows, report
