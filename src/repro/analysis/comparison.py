"""Head-to-head comparison harness: fast extraction vs the Hough baseline.

This is the machinery behind Table 1: for every benchmark diagram it runs
both methods on *independent* replay sessions of the same data (so probe
counts and simulated runtimes do not leak between methods), scores each
against the ground truth, and collects everything into
:class:`BenchmarkRecord` rows that the reporting module formats.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baseline.extraction import BaselineConfig, HoughBaselineExtractor
from ..core.config import ExtractionConfig
from ..core.extraction import FastVirtualGateExtractor
from ..core.result import ExtractionResult
from ..instrument.session import ExperimentSession
from ..instrument.timing import TimingModel
from ..physics.csd import ChargeStabilityDiagram
from .metrics import AccuracyMetrics, SuccessCriterion, accuracy_metrics, speedup


@dataclass(frozen=True)
class MethodRecord:
    """One method's outcome on one benchmark."""

    method: str
    success: bool
    result: ExtractionResult
    accuracy: AccuracyMetrics | None

    @property
    def n_probes(self) -> int:
        """Physically probed points."""
        return self.result.probe_stats.n_probes

    @property
    def probe_fraction(self) -> float:
        """Fraction of the diagram probed."""
        return self.result.probe_stats.probe_fraction

    @property
    def elapsed_s(self) -> float:
        """Simulated experiment runtime in seconds."""
        return self.result.probe_stats.elapsed_s


@dataclass(frozen=True)
class BenchmarkRecord:
    """Both methods' outcomes on one benchmark diagram."""

    index: int
    name: str
    resolution: tuple[int, int]
    fast: MethodRecord
    baseline: MethodRecord
    metadata: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float | None:
        """Baseline / fast runtime ratio, only defined when the fast method succeeds."""
        if not self.fast.success:
            return None
        return speedup(self.baseline.elapsed_s, self.fast.elapsed_s)

    @property
    def size_label(self) -> str:
        """Human-readable resolution, e.g. ``"100x100"``."""
        return f"{self.resolution[1]}x{self.resolution[0]}"


class ComparisonRunner:
    """Run both extraction methods over benchmark diagrams."""

    def __init__(
        self,
        fast_config: ExtractionConfig | None = None,
        baseline_config: BaselineConfig | None = None,
        timing: TimingModel | None = None,
        criterion: SuccessCriterion | None = None,
    ) -> None:
        self._fast_config = fast_config or ExtractionConfig.paper_defaults()
        self._baseline_config = baseline_config or BaselineConfig()
        self._timing = timing or TimingModel.paper_default()
        self._criterion = criterion or SuccessCriterion()

    @property
    def criterion(self) -> SuccessCriterion:
        """The ground-truth success criterion."""
        return self._criterion

    # ------------------------------------------------------------------
    def run_benchmark(
        self, csd: ChargeStabilityDiagram, index: int = 0, name: str | None = None
    ) -> BenchmarkRecord:
        """Run fast extraction and the baseline on one diagram."""
        label = name or str(csd.metadata.get("name", f"benchmark-{index}"))
        fast_session = ExperimentSession.from_csd(csd, timing=self._timing, label=label)
        fast_result = FastVirtualGateExtractor(self._fast_config).extract(fast_session)
        baseline_session = ExperimentSession.from_csd(csd, timing=self._timing, label=label)
        baseline_result = HoughBaselineExtractor(self._baseline_config).extract(
            baseline_session
        )
        fast_record = self._score(fast_result, csd)
        baseline_record = self._score(baseline_result, csd)
        metadata = dict(csd.metadata)
        if csd.geometry is not None:
            metadata["true_alpha_12"] = csd.geometry.alpha_12
            metadata["true_alpha_21"] = csd.geometry.alpha_21
        return BenchmarkRecord(
            index=index,
            name=label,
            resolution=csd.shape,
            fast=fast_record,
            baseline=baseline_record,
            metadata=metadata,
        )

    def run_suite(self, csds: list[ChargeStabilityDiagram]) -> list[BenchmarkRecord]:
        """Run both methods on every diagram of a suite (Table 1)."""
        return [
            self.run_benchmark(csd, index=index, name=str(csd.metadata.get("name", "")))
            for index, csd in enumerate(csds, start=1)
        ]

    # ------------------------------------------------------------------
    def _score(self, result: ExtractionResult, csd: ChargeStabilityDiagram) -> MethodRecord:
        geometry = csd.geometry
        accuracy = accuracy_metrics(result, geometry) if geometry is not None else None
        success = self._criterion.evaluate(result, geometry)
        return MethodRecord(
            method=result.method, success=success, result=result, accuracy=accuracy
        )
