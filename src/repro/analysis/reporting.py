"""Plain-text report formatting for the reproduced tables.

No plotting library is assumed; every experiment renders to aligned text
tables (the same rows and columns as the paper's Table 1) plus a short
summary block with the aggregate numbers the paper quotes in its abstract
(speedup range, average probe fraction, success counts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .comparison import BenchmarkRecord


def format_table(headers: list[str], rows: list[list[str]], title: str | None = None) -> str:
    """Render an aligned plain-text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _success_label(success: bool) -> str:
    return "Success" if success else "Fail"


def _format_speedup(record: BenchmarkRecord) -> str:
    value = record.speedup
    if value is None or not record.baseline.success and not record.fast.success:
        return "N/A"
    if value is None:
        return "N/A"
    return f"{value:.2f}x"


def table1_rows(records: list[BenchmarkRecord]) -> list[list[str]]:
    """Rows of the reproduced Table 1."""
    rows = []
    for record in records:
        n_pixels = record.fast.result.probe_stats.n_pixels
        fast_probes = record.fast.n_probes
        rows.append(
            [
                str(record.index),
                record.size_label,
                _success_label(record.fast.success),
                _success_label(record.baseline.success),
                f"{fast_probes} ({100.0 * fast_probes / n_pixels:.2f}%)",
                f"{record.baseline.n_probes} (100%)",
                f"{record.fast.elapsed_s:.2f}s",
                f"{record.baseline.elapsed_s:.2f}s",
                _format_speedup(record),
            ]
        )
    return rows


TABLE1_HEADERS = [
    "CSD",
    "Size",
    "Fast",
    "Baseline",
    "Points (fast)",
    "Points (baseline)",
    "Runtime (fast)",
    "Runtime (baseline)",
    "Speedup",
]


def format_table1(records: list[BenchmarkRecord]) -> str:
    """The reproduced Table 1 as a plain-text table."""
    return format_table(
        TABLE1_HEADERS,
        table1_rows(records),
        title="Table 1 (reproduced): fast virtual gate extraction vs Canny+Hough baseline",
    )


@dataclass(frozen=True)
class SuiteSummary:
    """Aggregate numbers over a benchmark suite (the abstract's claims)."""

    n_benchmarks: int
    fast_successes: int
    baseline_successes: int
    min_speedup: float
    max_speedup: float
    mean_probe_fraction: float

    def as_dict(self) -> dict:
        """Plain-dict view."""
        return {
            "n_benchmarks": self.n_benchmarks,
            "fast_successes": self.fast_successes,
            "baseline_successes": self.baseline_successes,
            "min_speedup": self.min_speedup,
            "max_speedup": self.max_speedup,
            "mean_probe_fraction": self.mean_probe_fraction,
        }


def summarize_suite(records: list[BenchmarkRecord]) -> SuiteSummary:
    """Aggregate a suite of benchmark records."""
    speedups = [r.speedup for r in records if r.speedup is not None and r.fast.success]
    fractions = [r.fast.probe_fraction for r in records if r.fast.success]
    return SuiteSummary(
        n_benchmarks=len(records),
        fast_successes=sum(1 for r in records if r.fast.success),
        baseline_successes=sum(1 for r in records if r.baseline.success),
        min_speedup=float(min(speedups)) if speedups else float("nan"),
        max_speedup=float(max(speedups)) if speedups else float("nan"),
        mean_probe_fraction=float(np.mean(fractions)) if fractions else float("nan"),
    )


def format_summary(summary: SuiteSummary) -> str:
    """Human-readable summary block."""
    lines = [
        "Summary",
        f"  benchmarks:            {summary.n_benchmarks}",
        f"  fast successes:        {summary.fast_successes}/{summary.n_benchmarks}",
        f"  baseline successes:    {summary.baseline_successes}/{summary.n_benchmarks}",
        f"  speedup range:         {summary.min_speedup:.2f}x .. {summary.max_speedup:.2f}x",
        f"  mean probe fraction:   {100.0 * summary.mean_probe_fraction:.1f}%",
    ]
    return "\n".join(lines)


def format_accuracy_table(records: list[BenchmarkRecord]) -> str:
    """Extra table: extracted-vs-true coefficients per benchmark (both methods)."""
    headers = [
        "CSD",
        "true a12",
        "true a21",
        "fast a12",
        "fast a21",
        "baseline a12",
        "baseline a21",
    ]
    rows = []
    for record in records:
        fast_matrix = record.fast.result.matrix
        base_matrix = record.baseline.result.matrix
        rows.append(
            [
                str(record.index),
                _fmt(record.metadata.get("true_alpha_12")),
                _fmt(record.metadata.get("true_alpha_21")),
                _fmt(fast_matrix.alpha_12 if fast_matrix else None),
                _fmt(fast_matrix.alpha_21 if fast_matrix else None),
                _fmt(base_matrix.alpha_12 if base_matrix else None),
                _fmt(base_matrix.alpha_21 if base_matrix else None),
            ]
        )
    return format_table(headers, rows, title="Extracted vs true virtualization coefficients")


def _fmt(value: float | None) -> str:
    if value is None or not np.isfinite(value):
        return "-"
    return f"{value:.3f}"


CAMPAIGN_HEADERS = [
    "Job",
    "Device",
    "Gates",
    "Method",
    "Res",
    "Noise",
    "Verdict",
    "Max |a err|",
    "Probes",
    "Runtime",
    "Failure",
]


def campaign_rows(rows: list[dict]) -> list[list[str]]:
    """Table rows from per-job campaign dicts (see ``CampaignResult.job_rows``)."""
    out = []
    for row in rows:
        out.append(
            [
                str(row["job_id"]),
                str(row["device"]),
                f"{row['gate_x']}-{row['gate_y']}",
                str(row["method"]),
                str(row["resolution"]),
                # Scenario jobs run under the named environment; static jobs
                # under a multiple of the standard noise mix.
                str(row["scenario"])
                if row.get("scenario")
                else f"{row['noise_scale']:g}x",
                _success_label(bool(row["success"])),
                _fmt(row["max_alpha_error"]),
                f"{row['n_probes']} ({100.0 * row['probe_fraction']:.1f}%)",
                f"{row['sim_elapsed_s']:.1f}s",
                "-" if row["success"] else str(row["failure_category"]),
            ]
        )
    return out


def format_campaign_table(rows: list[dict], max_rows: int | None = None) -> str:
    """Per-job campaign table, optionally truncated to the first ``max_rows``."""
    shown = rows if max_rows is None else rows[:max_rows]
    table = format_table(
        CAMPAIGN_HEADERS,
        campaign_rows(shown),
        title="Batch-tuning campaign: per-job outcomes",
    )
    if max_rows is not None and len(rows) > max_rows:
        table += f"\n... ({len(rows) - max_rows} more jobs)"
    return table


STAGE_BREAKDOWN_HEADERS = [
    "Method",
    "Stage",
    "Runs",
    "Probes",
    "Probe share",
    "Sim time",
    "Wall",
]


def aggregate_stage_costs(rows: list[dict]) -> dict[tuple[str, str], dict]:
    """Per-(method, stage) cost totals from per-job campaign dicts.

    Each job dict may carry ``stage_telemetry`` (a sequence of
    :class:`~repro.core.result.StageTelemetry`); jobs without telemetry
    contribute nothing.  The single aggregation behind both the rendered
    breakdown table and :meth:`repro.campaign.results.CampaignResult.stage_breakdown`.
    """
    totals: dict[tuple[str, str], dict] = {}
    for row in rows:
        method = str(row.get("method"))
        for telemetry in row.get("stage_telemetry") or ():
            entry = totals.setdefault(
                (method, telemetry.stage),
                {"n_runs": 0, "n_probes": 0, "sim_elapsed_s": 0.0, "wall_s": 0.0},
            )
            entry["n_runs"] += 1
            entry["n_probes"] += telemetry.n_probes
            entry["sim_elapsed_s"] += telemetry.sim_elapsed_s
            entry["wall_s"] += telemetry.wall_s
    return totals


def stage_breakdown_rows(rows: list[dict]) -> list[list[str]]:
    """Per-(method, stage) aggregate rows from per-job campaign dicts.

    "Probe share" is the stage's fraction of its *method's* total probes —
    the per-method answer to "where did the probes go".
    """
    totals = aggregate_stage_costs(rows)
    method_probes: dict[str, int] = {}
    for (method, _stage), entry in totals.items():
        method_probes[method] = method_probes.get(method, 0) + entry["n_probes"]
    out = []
    for (method, stage), entry in totals.items():
        denominator = method_probes.get(method, 0)
        share = (
            f"{100.0 * entry['n_probes'] / denominator:.1f}%"
            if denominator
            else "-"
        )
        out.append(
            [
                method,
                stage,
                str(entry["n_runs"]),
                str(entry["n_probes"]),
                share,
                f"{entry['sim_elapsed_s']:.1f}s",
                f"{1e3 * entry['wall_s']:.1f}ms",
            ]
        )
    return out


def format_stage_breakdown(rows: list[dict]) -> str:
    """Per-stage cost table over a campaign's jobs (empty string if no telemetry).

    Rows keep first-appearance order — method by method, stage by stage in
    execution order — so the table reads like the pipelines ran.
    """
    breakdown = stage_breakdown_rows(rows)
    if not breakdown:
        return ""
    return format_table(
        STAGE_BREAKDOWN_HEADERS,
        breakdown,
        title="Per-stage probe accounting: where did the probes go",
    )


FAULT_RESILIENCE_HEADERS = [
    "Fault condition",
    "Jobs",
    "Succeeded",
    "Probe retries",
    "Worker crashes",
]


def aggregate_fault_resilience(rows: list[dict]) -> dict[str, dict]:
    """Per-fault-condition outcome totals from per-job campaign dicts.

    Groups jobs by their injected fault condition (``"none"`` for
    fault-free jobs) and totals successes, probe-level retries, and
    worker-death records — the numbers that say whether the retry stack
    actually absorbed the injected misbehaviour.
    """
    totals: dict[str, dict] = {}
    for row in rows:
        condition = str(row.get("fault") or "none")
        entry = totals.setdefault(
            condition,
            {"n_jobs": 0, "n_succeeded": 0, "n_probe_retries": 0, "n_crashes": 0},
        )
        entry["n_jobs"] += 1
        entry["n_succeeded"] += bool(row.get("success"))
        entry["n_probe_retries"] += int(row.get("n_probe_retries") or 0)
        entry["n_crashes"] += row.get("failure_category") == "worker_error"
    return totals


def format_fault_resilience(rows: list[dict]) -> str:
    """Fault-resilience table over a campaign's jobs.

    Empty string when nothing was injected — no job carries a fault
    condition or a probe retry — so fault-free campaign reports render
    exactly as they did before the fault axis existed.
    """
    if not any(row.get("fault") or row.get("n_probe_retries") for row in rows):
        return ""
    totals = aggregate_fault_resilience(rows)
    table_rows = [
        [
            condition,
            str(entry["n_jobs"]),
            f"{entry['n_succeeded']}/{entry['n_jobs']}",
            str(entry["n_probe_retries"]),
            str(entry["n_crashes"]),
        ]
        for condition, entry in totals.items()
    ]
    return format_table(
        FAULT_RESILIENCE_HEADERS,
        table_rows,
        title="Fault resilience: outcomes under injected conditions",
    )


SURFACE_HEADERS = ["region", "", "jobs", "success", "rate", "95% CI"]


def format_surface_table(
    x_axis: str, y_axis: str, cells: list[dict], title: str | None = None
) -> str:
    """Success-surface table from per-cell dicts (see ``SurfaceCell``).

    One row per region, lowest severities first; empty regions render with
    a ``-`` rate so coverage gaps are visible rather than silently absent.
    """

    def _bounds(low: float, high: float, axis: str) -> str:
        if low == high:
            return f"{axis}={low:g}"
        return f"{axis} [{low:g}, {high:g})"

    rows = []
    for cell in cells:
        n_jobs = int(cell["n_jobs"])
        n_succeeded = int(cell["n_succeeded"])
        rate = f"{100.0 * n_succeeded / n_jobs:.0f}%" if n_jobs else "-"
        rows.append(
            [
                _bounds(cell["x_low"], cell["x_high"], x_axis),
                _bounds(cell["y_low"], cell["y_high"], y_axis),
                str(n_jobs),
                f"{n_succeeded}/{n_jobs}" if n_jobs else "-",
                rate,
                f"[{100.0 * cell['ci_low']:.0f}%, {100.0 * cell['ci_high']:.0f}%]",
            ]
        )
    return format_table(SURFACE_HEADERS, rows, title=title)


def format_campaign_summary(summary: dict) -> str:
    """Aggregate block of a campaign (see ``CampaignResult.summary``).

    A partial result — one rebuilt from an interrupted run's checkpoint
    journal, where fewer records exist than the grid expanded into — is
    flagged with a ``completed`` line so the aggregates read as
    "so far", not as the finished campaign.
    """
    rate = summary["success_rate"]
    fraction = summary["mean_probe_fraction"]
    lines = [
        "Campaign summary",
        f"  jobs:                  {summary['n_jobs']}",
    ]
    n_expected = summary.get("n_expected", summary["n_jobs"])
    if n_expected > summary["n_jobs"]:
        lines.append(
            f"  completed:             {summary['n_jobs']}/{n_expected} (partial)"
        )
    lines += [
        f"  succeeded:             {summary['n_succeeded']}/{summary['n_jobs']}"
        + (f" ({100.0 * rate:.1f}%)" if np.isfinite(rate) else ""),
        f"  total probes:          {summary['total_probes']}",
        f"  simulated time:        {summary['total_sim_elapsed_s']:.1f}s",
        f"  mean probe fraction:   "
        + (f"{100.0 * fraction:.1f}%" if np.isfinite(fraction) else "-"),
        f"  workers:               {summary['n_workers']}",
        f"  wall time:             {summary['wall_time_s']:.2f}s",
    ]
    taxonomy = summary.get("failure_taxonomy") or {}
    if taxonomy:
        lines.append("  failure taxonomy:")
        for category, count in sorted(taxonomy.items(), key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"    {category}: {count}")
    return "\n".join(lines)
