"""Baseline files: adopt existing debt without letting new debt in.

A baseline is a JSON document of known, tolerated violations.  Matching is
by ``(rule, path, snippet)`` — the stripped source line, not the line
number — so entries survive unrelated edits that shift code up or down,
but *die* the moment the offending line itself changes.  Unused entries
are reported (and fail the run in ``--strict`` mode): a baseline is a
burn-down list, not a landfill.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import ConfigurationError
from .violations import Violation

#: Format marker so a future entry shape can migrate old files loudly.
BASELINE_VERSION = 1


@dataclass
class Baseline:
    """A set of tolerated violations, consumed one match at a time."""

    entries: list[Violation] = field(default_factory=list)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline previously written by :meth:`save`."""
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"cannot read baseline file {path}: {exc}") from exc
        if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
            raise ConfigurationError(
                f"baseline file {path} is not a version-{BASELINE_VERSION} "
                "repro.lint baseline"
            )
        return cls(
            entries=[Violation.from_dict(entry) for entry in data.get("entries", ())]
        )

    @classmethod
    def from_violations(cls, violations: list[Violation]) -> "Baseline":
        """A baseline adopting every given violation."""
        return cls(entries=sorted(violations))

    def save(self, path: str | Path) -> Path:
        """Write the baseline as strict JSON; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": BASELINE_VERSION,
            "entries": [entry.as_dict() for entry in sorted(self.entries)],
        }
        target.write_text(
            json.dumps(payload, indent=2, allow_nan=False) + "\n", encoding="utf-8"
        )
        return target

    # ------------------------------------------------------------------
    def partition(
        self, violations: list[Violation]
    ) -> tuple[list[Violation], list[Violation], list[Violation]]:
        """Split ``violations`` into ``(fresh, adopted, unused_entries)``.

        Each baseline entry absolves at most one violation: two new copies
        of an adopted line mean one of them is new debt and is reported.
        """
        remaining: dict[tuple[str, str, str], int] = {}
        for entry in self.entries:
            key = (entry.rule, entry.path, entry.snippet)
            remaining[key] = remaining.get(key, 0) + 1
        fresh: list[Violation] = []
        adopted: list[Violation] = []
        for violation in violations:
            key = (violation.rule, violation.path, violation.snippet)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                adopted.append(violation)
            else:
                fresh.append(violation)
        unused: list[Violation] = []
        for entry in self.entries:
            key = (entry.rule, entry.path, entry.snippet)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                unused.append(entry)
        return fresh, adopted, unused
