"""The one currency every lint half trades in: a :class:`Violation`.

AST rules, the contract audit, pragma hygiene, and baseline bookkeeping all
report through this record, so the CLI, the JSON report, and the baseline
file share one shape.  Like every other record in the library it is
strict-JSON round-trippable (``as_dict`` / ``from_dict``) — and it is
itself covered by the contract audit it feeds.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule, where it fired, and why.

    Attributes
    ----------
    path:
        File the violation lives in, as reported (relative to the lint
        root for AST rules; a dotted module path for contract findings).
    line:
        1-based line number; 0 for findings with no source location
        (contract-audit findings on live objects).
    rule:
        Registry name of the rule that fired (``"wall-clock"``).
    message:
        Human-readable explanation, including the fix direction.
    snippet:
        The stripped source line (empty for contract findings); the
        baseline matches on this so entries survive line drift.
    """

    path: str
    line: int
    rule: str
    message: str
    snippet: str = ""

    def format(self) -> str:
        """The canonical one-line rendering: ``path:line rule: message``."""
        location = f"{self.path}:{self.line}" if self.line else self.path
        return f"{location} {self.rule}: {self.message}"

    def as_dict(self) -> dict:
        """JSON-native plain-dict view (every field)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "Violation":
        """Rebuild from :meth:`as_dict` output (extra keys ignored)."""
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})
