"""Import-time contract audit over the library's registries and records.

Where the AST rules read *source*, this half audits *live objects*: every
scenario, pipeline, execution backend, and fault model reachable from its
registry, and every strict-JSON record class in the library, is checked
against the contracts the campaign/checkpoint machinery relies on:

``contract-pickle``
    The object round-trips ``pickle.dumps`` / ``loads`` and its class is
    importable by ``module.qualname`` — both required for spawn-start
    worker processes, which rebuild shipped objects from their pickles in
    a fresh interpreter.
``contract-repr``
    ``repr(obj)`` contains no ``0x…`` memory address.  This generalises
    the PR 4 checkpoint-fingerprint guard
    (:func:`repro.campaign.engine.campaign_fingerprint`): an address-bearing
    repr changes across processes, so fingerprints built from it can never
    match on resume.
``contract-roundtrip``
    For every class defining both ``as_dict`` and ``from_dict``:
    ``from_dict(json.loads(json.dumps(as_dict(), allow_nan=False)))``
    reconstructs an equal object, and ``as_dict`` emits every dataclass
    field — the drift check that keeps new fields from silently falling
    out of checkpoints.
``contract-registry``
    Registry name hygiene: a backend's ``name`` matches its registry key,
    and a pipeline alias may not shadow a registered pipeline name.

Record classes are discovered by walking every ``repro`` module; each
discovered class must have a sample factory registered via
:func:`register_contract_sample`, so adding a record class without wiring
it into the audit is itself a violation.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
import pickle
import pkgutil

from ..reprs import ADDRESS_REPR
from .violations import Violation

__all__ = [
    "audit_record_contracts",
    "audit_registry_contracts",
    "register_contract_sample",
    "run_contract_audit",
    "spawn_roundtrip",
]

#: Sample factories for record classes: "module.QualName" -> zero-arg factory.
_SAMPLE_FACTORIES: dict[str, object] = {}


def register_contract_sample(cls: type, factory) -> None:
    """Register a zero-arg sample factory for a record class.

    The audit round-trips the sample through strict JSON; the sample should
    exercise the class's hard cases (a NaN field, nested telemetry) rather
    than the all-defaults happy path.
    """
    _SAMPLE_FACTORIES[f"{cls.__module__}.{cls.__qualname__}"] = factory


def _violation(rule: str, where: str, message: str) -> Violation:
    return Violation(path=where, line=0, rule=rule, message=message)


def _check_pickle(obj: object, where: str, out: list[Violation]) -> None:
    """Spawn-semantics picklability: round-trip plus class importability."""
    cls = type(obj)
    try:
        module = importlib.import_module(cls.__module__)
        resolved = module
        for part in cls.__qualname__.split("."):
            resolved = getattr(resolved, part)
        if resolved is not cls:
            raise AttributeError(
                f"{cls.__module__}.{cls.__qualname__} resolves to a different object"
            )
    except Exception as exc:
        out.append(
            _violation(
                "contract-pickle",
                where,
                f"{cls.__qualname__} is not importable as "
                f"{cls.__module__}.{cls.__qualname__} ({exc}); a spawn-start "
                "worker cannot rebuild it from a pickle",
            )
        )
        return
    try:
        restored = pickle.loads(pickle.dumps(obj))
    except Exception as exc:
        out.append(
            _violation(
                "contract-pickle",
                where,
                f"does not survive pickle round-trip ({type(exc).__name__}: "
                f"{exc}); it cannot ship to spawn-start workers",
            )
        )
        return
    if repr(restored) != repr(obj) and not ADDRESS_REPR.search(repr(obj)):
        out.append(
            _violation(
                "contract-pickle",
                where,
                "pickle round-trip changes the object's content repr — "
                "state is being lost or regenerated in __reduce__/__getstate__",
            )
        )


def _check_repr(obj: object, where: str, out: list[Violation]) -> None:
    text = repr(obj)
    if ADDRESS_REPR.search(text):
        out.append(
            _violation(
                "contract-repr",
                where,
                f"repr embeds a memory address ({text[:80]}...); checkpoint "
                "fingerprints built from it cannot survive a process restart "
                "— give the class a content-based __repr__ (or make it a "
                "dataclass)",
            )
        )


# ---------------------------------------------------------------------------
# Registry audits
# ---------------------------------------------------------------------------


def audit_registry_contracts() -> list[Violation]:
    """Audit every object reachable from the four registries."""
    # Imported here, not at module top: the audit inspects the campaign
    # layers, but the lint package must stay importable on its own.
    from ..execution.base import backend_from_spec, backend_names
    from ..faults import all_faults
    from ..pipeline.registry import METHOD_ALIASES, get_pipeline, pipeline_names
    from ..scenarios.catalog import all_scenarios

    violations: list[Violation] = []
    for scenario in all_scenarios():
        where = f"scenario:{scenario.name}"
        _check_pickle(scenario, where, violations)
        _check_repr(scenario, where, violations)
    for name, models in all_faults().items():
        for model in models:
            where = f"fault:{name}:{type(model).__name__}"
            _check_pickle(model, where, violations)
            _check_repr(model, where, violations)
        if not models:
            violations.append(
                _violation(
                    "contract-registry",
                    f"fault:{name}",
                    "fault condition registered with no models; selecting it "
                    "would silently inject nothing",
                )
            )
    for name in pipeline_names():
        where = f"pipeline:{name}"
        pipeline = get_pipeline(name)
        _check_pickle(pipeline, where, violations)
        _check_repr(pipeline, where, violations)
        for stage in pipeline.stages:
            _check_repr(stage, f"{where}:{stage.name}", violations)
    for alias, target in METHOD_ALIASES.items():
        if alias in pipeline_names():
            violations.append(
                _violation(
                    "contract-registry",
                    f"pipeline:{alias}",
                    f"alias {alias!r} -> {target!r} shadows a registered "
                    "pipeline of the same name; lookups become ambiguous",
                )
            )
        if target not in pipeline_names():
            violations.append(
                _violation(
                    "contract-registry",
                    f"pipeline:{alias}",
                    f"alias {alias!r} points at unregistered pipeline {target!r}",
                )
            )
    for name in backend_names():
        where = f"backend:{name}"
        backend = backend_from_spec(name, n_workers=2, chunk_size=None)
        if backend.name != name:
            violations.append(
                _violation(
                    "contract-registry",
                    where,
                    f"backend registered as {name!r} reports name="
                    f"{backend.name!r}; result metadata would misattribute "
                    "the execution policy",
                )
            )
        _check_pickle(backend, where, violations)
        _check_repr(backend, where, violations)
    return violations


# ---------------------------------------------------------------------------
# Record audits
# ---------------------------------------------------------------------------


def _iter_record_classes():
    """Every class in ``repro`` defining both ``as_dict`` and ``from_dict``."""
    import repro

    seen: set[type] = set()
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.rsplit(".", 1)[-1] == "__main__":
            # CLI entry points; importing one outside `python -m` would
            # execute nothing (they are __main__-guarded) but costs a parse.
            continue
        modules.append(importlib.import_module(info.name))
    for module in modules:
        for value in vars(module).values():
            if not isinstance(value, type) or value in seen:
                continue
            if not value.__module__.startswith("repro"):
                continue
            if "as_dict" in vars(value) and "from_dict" in vars(value):
                seen.add(value)
                yield value


def _register_builtin_samples() -> None:
    """Samples for the library's own record classes (idempotent)."""
    from ..campaign.results import CampaignJobRecord, CampaignResult
    from ..core.result import StageTelemetry

    if f"{StageTelemetry.__module__}.{StageTelemetry.__qualname__}" in _SAMPLE_FACTORIES:
        return

    def telemetry() -> StageTelemetry:
        return StageTelemetry(
            stage="anchors",
            outcome="ok",
            n_probes=12,
            n_requests=14,
            cache_hits=2,
            sim_elapsed_s=0.6,
            wall_s=0.0,
            detail="sample",
        )

    def record() -> CampaignJobRecord:
        return CampaignJobRecord(
            job_id=3,
            label="sample-job",
            device="double_dot",
            method="fast-extraction",
            resolution=40,
            noise_scale=1.0,
            repeat=0,
            gate_x="P1",
            gate_y="P2",
            success=False,
            extractor_success=True,
            alpha_12=0.24,
            alpha_21=None,
            true_alpha_12=None,
            true_alpha_21=None,
            # The hard case on purpose: NaN exercises the tagged-dict JSON
            # encoding and the NaN-aware equality the round-trip relies on.
            max_alpha_error=float("nan"),  # repro: allow[nan-record-field] -- audit sample exercising the tagged-JSON contract
            n_probes=120,
            probe_fraction=0.075,
            sim_elapsed_s=6.0,
            wall_elapsed_s=0.0,
            failure_category="no_ground_truth",
            failure_reason="sample",
            scenario="quiet_lab",
            # Fault-axis fields ride through the same round-trip contract.
            fault="transient-reads",
            n_probe_retries=2,
            stage_telemetry=(telemetry(),),
        )

    def result() -> CampaignResult:
        return CampaignResult(
            records=(record(),),
            n_workers=2,
            wall_time_s=0.0,
            metadata={"n_jobs": 1, "backend": "serial"},
        )

    def lint_violation() -> Violation:
        return Violation(
            path="src/repro/sample.py",
            line=7,
            rule="wall-clock",
            message="sample",
            snippet="t = time.time()",
        )

    from ..scenariospace.space import ScenarioParams
    from ..scenariospace.surface import SurfaceCell, SurfaceReport
    from ..scenarios.devices import DeviceSpec

    def scenario_params() -> ScenarioParams:
        return ScenarioParams(
            device=DeviceSpec(factory="grid_array", kwargs=(("cols", 3), ("rows", 2))),
            noise_scale=1.5,
            drift_mv_per_hour=12.0,
            fault_rate=0.08,
            time_dependent=True,
        )

    def surface_cell() -> SurfaceCell:
        # An *empty* cell on purpose: n_jobs=0 exercises the nan-free
        # encoding guarantee (success_rate is a property, never a field).
        return SurfaceCell(
            x_low=0.5, x_high=1.75, y_low=0.0, y_high=0.15,
            n_jobs=0, n_succeeded=0, ci_low=0.0, ci_high=1.0,
        )

    def surface_report() -> SurfaceReport:
        return SurfaceReport(
            space="sample-space",
            x_axis="noise_scale",
            y_axis="fault_rate",
            n_draws=12,
            seed=7,
            cells=(surface_cell(),),
        )

    from ..kernelcache import KernelCacheStats
    from ..physics.charge_state import SolverStats

    def kernel_cache_stats() -> KernelCacheStats:
        return KernelCacheStats(
            n_entries=2,
            pixel_hits=3969,
            pixel_solves=3969,
            entry_hits=5,
            entry_misses=2,
            evictions=1,
        )

    def solver_stats() -> SolverStats:
        return SolverStats(
            n_points=400,
            n_state_scores=190464,
            n_bound_scores=2048,
            n_pruned_points=144,
            n_full_points=256,
        )

    from ..cluster.coordinator import ClusterStats
    from ..cluster import wire

    def cluster_stats() -> ClusterStats:
        return ClusterStats(
            n_workers=4,
            n_leases=15,
            n_steal_requests=1,
            n_stolen_jobs=3,
            n_worker_deaths=2,
            n_requeued_jobs=13,
            n_crash_markers=1,
            n_affinity_hits=6,
            n_rejected_peers=1,
            steal_latency_s=0.012,
        )

    # One sample per wire-message kind: the cluster control plane rides the
    # same strict-JSON round-trip contract as the checkpoint records, so a
    # field added to a message without as_dict coverage fails the audit.
    wire_samples = {
        wire.Register: lambda: wire.Register(pid=4242, host="node-a"),
        wire.Welcome: lambda: wire.Welcome(worker_id=1, heartbeat_s=0.2),
        wire.Task: wire.Task,
        wire.Lease: lambda: wire.Lease(job_ids=(3, 4, 5)),
        wire.Heartbeat: lambda: wire.Heartbeat(worker_id=1, current_job=-1, n_queued=2),
        wire.Steal: lambda: wire.Steal(max_jobs=4),
        wire.Stolen: lambda: wire.Stolen(job_ids=(5,)),
        wire.Result: lambda: wire.Result(job_id=3, encoding="columnar"),
        wire.Crash: lambda: wire.Crash(job_id=3, message="ValueError: boom"),
        wire.Shutdown: wire.Shutdown,
    }

    register_contract_sample(StageTelemetry, telemetry)
    register_contract_sample(ClusterStats, cluster_stats)
    for message_cls, message_factory in wire_samples.items():
        register_contract_sample(message_cls, message_factory)
    register_contract_sample(KernelCacheStats, kernel_cache_stats)
    register_contract_sample(SolverStats, solver_stats)
    register_contract_sample(CampaignJobRecord, record)
    register_contract_sample(CampaignResult, result)
    register_contract_sample(Violation, lint_violation)
    register_contract_sample(ScenarioParams, scenario_params)
    register_contract_sample(SurfaceCell, surface_cell)
    register_contract_sample(SurfaceReport, surface_report)


def audit_record_contracts() -> list[Violation]:
    """Audit every strict-JSON record class for round-trip closure."""
    _register_builtin_samples()
    violations: list[Violation] = []
    for cls in _iter_record_classes():
        where = f"record:{cls.__module__}.{cls.__qualname__}"
        factory = _SAMPLE_FACTORIES.get(f"{cls.__module__}.{cls.__qualname__}")
        if factory is None:
            violations.append(
                _violation(
                    "contract-roundtrip",
                    where,
                    "defines as_dict/from_dict but has no contract sample; "
                    "register one with repro.lint.register_contract_sample "
                    "so the round-trip stays audited as fields evolve",
                )
            )
            continue
        sample = factory()
        _check_pickle(sample, where, violations)
        _check_repr(sample, where, violations)
        payload = sample.as_dict()
        try:
            encoded = json.dumps(payload, allow_nan=False)
        except (TypeError, ValueError) as exc:
            violations.append(
                _violation(
                    "contract-roundtrip",
                    where,
                    f"as_dict() output is not strict JSON ({exc}); encode "
                    "non-finite floats as tagged dicts",
                )
            )
            continue
        restored = cls.from_dict(json.loads(encoded))
        if restored != sample:
            violations.append(
                _violation(
                    "contract-roundtrip",
                    where,
                    "from_dict(as_dict()) does not reconstruct an equal "
                    "object — serialisation drift; checkpoints written today "
                    "would resume wrong tomorrow",
                )
            )
        if dataclasses.is_dataclass(cls):
            missing = [
                f.name for f in dataclasses.fields(cls) if f.name not in payload
            ]
            if missing:
                violations.append(
                    _violation(
                        "contract-roundtrip",
                        where,
                        f"as_dict() omits field(s) {', '.join(missing)}; new "
                        "fields silently fall out of checkpoints and saves",
                    )
                )
    return violations


def run_contract_audit() -> list[Violation]:
    """Run both audit halves; returns every violation found."""
    return audit_registry_contracts() + audit_record_contracts()


# ---------------------------------------------------------------------------
# Spawn round-trip helper (used by the picklability smoke tests)
# ---------------------------------------------------------------------------


def _spawn_probe(payload: bytes) -> str:
    """Worker body: unpickle in a fresh interpreter, return the repr."""
    return repr(pickle.loads(payload))


def spawn_roundtrip(objects: list) -> list[str]:
    """Ship every object to one spawn-start worker; return the child reprs.

    This is the real thing the in-process pickle check approximates: a
    fresh interpreter (no fork-inherited module state) rebuilds each object
    purely from its pickle, exactly like a ``ProcessPoolBackend`` worker
    under spawn start semantics.
    """
    import multiprocessing

    payloads = [pickle.dumps(obj) for obj in objects]
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=1) as pool:
        return pool.map(_spawn_probe, payloads)
