"""``python -m repro.lint`` — the invariant gate, as a command.

Examples
--------
Lint the installed ``repro`` package (the default root)::

    python -m repro.lint

Gate CI (pragmas need justifications, stale baseline entries fail)::

    python -m repro.lint --strict

Adopt today's debt, then burn it down::

    python -m repro.lint --write-baseline lint-baseline.json
    python -m repro.lint --baseline lint-baseline.json

The exit code ORs one bit per regressed rule class (see
:mod:`repro.lint.rules`): 1 RNG, 2 wall-clock, 4 silent-fallback,
8 strict-JSON, 16 NaN-record-field, 32 contract audit, 64 pragma hygiene;
120 marks a usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..exceptions import ConfigurationError
from .baseline import Baseline
from .engine import run_lint
from .rules import rule_catalogue

#: Exit code for configuration mistakes, outside the rule-class bit space.
USAGE_ERROR = 120


def _default_root() -> Path:
    """The installed ``repro`` package — works from any working directory."""
    import repro

    return Path(repro.__file__).parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Machine-check the repo's determinism, strict-JSON, and registry "
            "invariants (AST rules + import-time contract audit)."
        ),
    )
    parser.add_argument(
        "root",
        nargs="?",
        default=None,
        help="directory or file to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="JSON baseline file of adopted violations",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="write the current violations as a baseline and exit 0",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help=(
            "CI gate mode: justification-less pragmas and stale baseline "
            "entries are violations too"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as strict JSON instead of text",
    )
    parser.add_argument(
        "--no-contracts",
        action="store_true",
        help="skip the import-time contract audit (AST rules only)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(rule_catalogue())
        return 0
    root = Path(args.root) if args.root is not None else _default_root()
    rules = (
        [name.strip() for name in args.rules.split(",") if name.strip()]
        if args.rules
        else None
    )
    try:
        baseline = Baseline.load(args.baseline) if args.baseline else None
        report = run_lint(
            root,
            rules=rules,
            baseline=baseline,
            strict=args.strict,
            contracts=not args.no_contracts,
        )
    except ConfigurationError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return USAGE_ERROR
    if args.write_baseline:
        path = Baseline.from_violations(list(report.violations)).save(
            args.write_baseline
        )
        print(f"wrote {len(report.violations)} entries to {path}")
        return 0
    print(report.format_json() if args.json else report.format_text())
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
