"""The lint engine: walk files, run rules, apply pragmas and baseline.

:func:`run_lint` is the one entry point the CLI and the tests share.  The
engine owns everything that is *not* a rule's business: which files are in
a rule's scope, whether a violation is suppressed by an inline pragma or
adopted by the baseline, pragma hygiene (unknown rule names always;
justification-less pragmas in strict mode), and folding the contract audit
into the same report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import ConfigurationError
from .baseline import Baseline
from .contracts import run_contract_audit
from .rules import FileContext, LintRule, all_rules, exit_code_for, rule_names
from .violations import Violation

__all__ = ["LintReport", "lint_paths", "run_lint"]

#: Reserved rule name for pragma-hygiene findings (exit bit EXIT_PRAGMA).
PRAGMA_RULE = "pragma-hygiene"


@dataclass(frozen=True)
class LintReport:
    """Everything one lint run produced, ready to render or serialise."""

    violations: tuple[Violation, ...]
    suppressed: tuple[Violation, ...]
    adopted: tuple[Violation, ...]
    unused_baseline: tuple[Violation, ...]
    n_files: int
    strict: bool = False

    @property
    def exit_code(self) -> int:
        """OR of the exit bits of every reported rule class (0 = clean)."""
        return exit_code_for(list(self.violations))

    @property
    def counts(self) -> dict[str, int]:
        """Violation counts per rule, in rule order."""
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return counts

    def format_text(self) -> str:
        """The human-facing report."""
        lines = [violation.format() for violation in sorted(self.violations)]
        if self.unused_baseline:
            lines.append("")
            lines.append("unused baseline entries (stale debt — remove them):")
            lines.extend(f"  {entry.format()}" for entry in sorted(self.unused_baseline))
        lines.append("")
        summary = (
            f"checked {self.n_files} files: {len(self.violations)} violation(s)"
            f" ({len(self.suppressed)} pragma-suppressed,"
            f" {len(self.adopted)} baseline-adopted)"
        )
        if self.counts:
            per_rule = ", ".join(f"{rule}={n}" for rule, n in sorted(self.counts.items()))
            summary += f" [{per_rule}]"
        lines.append(summary)
        return "\n".join(lines)

    def format_json(self) -> str:
        """The machine-facing report (strict JSON)."""
        payload = {
            "violations": [v.as_dict() for v in sorted(self.violations)],
            "suppressed": [v.as_dict() for v in sorted(self.suppressed)],
            "adopted": [v.as_dict() for v in sorted(self.adopted)],
            "unused_baseline": [v.as_dict() for v in sorted(self.unused_baseline)],
            "counts": self.counts,
            "n_files": self.n_files,
            "strict": self.strict,
            "exit_code": self.exit_code,
        }
        return json.dumps(payload, indent=2, allow_nan=False)


@dataclass(frozen=True)
class _FileFindings:
    """Per-file rule output before pragma/baseline resolution."""

    context: FileContext
    violations: list[Violation] = field(default_factory=list)


def _iter_source_files(root: Path) -> list[Path]:
    if root.is_file():
        return [root]
    return sorted(path for path in root.rglob("*.py") if path.is_file())


def _in_scope(rule: LintRule, relpath: str) -> bool:
    if not rule.scope:
        return True
    parts = Path(relpath).parts
    return any(part in rule.scope for part in parts)


def _pragma_hygiene(
    findings: list[_FileFindings], strict: bool, known: tuple[str, ...]
) -> list[Violation]:
    """Unknown rule names always fail; bare pragmas fail in strict mode."""
    out: list[Violation] = []
    known_set = set(known) | {PRAGMA_RULE}
    for finding in findings:
        for pragma in finding.context.pragmas.all_pragmas():
            unknown = [
                name
                for name in pragma.rules
                if name not in known_set and not name.startswith("contract-")
            ]
            if not pragma.rules:
                unknown = ["<empty>"]
            if unknown:
                out.append(
                    Violation(
                        path=finding.context.relpath,
                        line=pragma.line,
                        rule=PRAGMA_RULE,
                        message=(
                            f"pragma names unknown rule(s) {', '.join(unknown)}; "
                            "a typo here silently disables nothing — fix the name"
                        ),
                        snippet=finding.context.snippet(pragma.line),
                    )
                )
            elif strict and pragma.is_bare:
                out.append(
                    Violation(
                        path=finding.context.relpath,
                        line=pragma.line,
                        rule=PRAGMA_RULE,
                        message=(
                            "pragma without a justification; strict mode "
                            "requires `# repro: allow[rule] -- why it is safe`"
                        ),
                        snippet=finding.context.snippet(pragma.line),
                    )
                )
    return out


def lint_paths(
    paths: list[Path], root: Path | None = None, rules: list[LintRule] | None = None
) -> list[_FileFindings]:
    """Parse and rule-check every file; pragmas are not yet applied."""
    chosen = list(rules) if rules is not None else list(all_rules())
    findings: list[_FileFindings] = []
    for path in paths:
        relpath = str(path.relative_to(root)) if root is not None else str(path)
        try:
            source = path.read_text(encoding="utf-8")
            context = FileContext.from_source(path, relpath, source)
        except (OSError, SyntaxError, UnicodeDecodeError) as exc:
            raise ConfigurationError(f"cannot lint {path}: {exc}") from exc
        finding = _FileFindings(context=context)
        for rule in chosen:
            if _in_scope(rule, relpath):
                finding.violations.extend(rule.check(context))
        findings.append(finding)
    return findings


def run_lint(
    root: str | Path,
    rules: list[str] | None = None,
    baseline: Baseline | None = None,
    strict: bool = False,
    contracts: bool = True,
) -> LintReport:
    """Lint every ``.py`` file under ``root`` (plus the contract audit).

    Parameters
    ----------
    root:
        Directory (or single file) to walk.
    rules:
        Rule names to run; ``None`` runs every registered rule.
    baseline:
        Known-debt entries to adopt (see :class:`~repro.lint.baseline.Baseline`).
    strict:
        Fail justification-less pragmas and unused baseline entries too.
    contracts:
        Whether to fold the import-time contract audit into the report.
    """
    root = Path(root)
    if not root.exists():
        raise ConfigurationError(f"lint root {root} does not exist")
    chosen = (
        None
        if rules is None
        else [rule for rule in all_rules() if rule.name in set(rules)]
    )
    if rules is not None:
        unknown = set(rules) - set(rule_names())
        if unknown:
            raise ConfigurationError(
                f"unknown lint rule(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(rule_names())}"
            )
    findings = lint_paths(
        _iter_source_files(root),
        root=root if root.is_dir() else root.parent,
        rules=chosen,
    )

    live: list[Violation] = []
    suppressed: list[Violation] = []
    for finding in findings:
        for violation in finding.violations:
            if finding.context.pragmas.allows(violation.rule, violation.line):
                suppressed.append(violation)
            else:
                live.append(violation)
    live.extend(_pragma_hygiene(findings, strict, rule_names()))

    if contracts:
        live.extend(run_contract_audit())

    adopted: list[Violation] = []
    unused: list[Violation] = []
    if baseline is not None:
        live, adopted, unused = baseline.partition(live)
        if strict and unused:
            live = live + [
                Violation(
                    path=entry.path,
                    line=entry.line,
                    rule=PRAGMA_RULE,
                    message=(
                        "stale baseline entry (the violation it adopted is "
                        "gone); strict mode requires pruning it: "
                        f"{entry.rule}: {entry.snippet or entry.message}"
                    ),
                    snippet=entry.snippet,
                )
                for entry in unused
            ]
    return LintReport(
        violations=tuple(live),
        suppressed=tuple(suppressed),
        adopted=tuple(adopted),
        unused_baseline=tuple(unused),
        n_files=len(findings),
        strict=strict,
    )
