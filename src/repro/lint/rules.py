"""The :class:`LintRule` protocol and rule registry.

The registry mirrors the scenario, pipeline, and execution-backend
registries (:func:`register_rule` / :func:`get_rule` / :func:`rule_names` /
:func:`rule_catalogue`): the built-ins in :mod:`repro.lint.ast_rules`
register themselves on import, and a project can register extra rules the
same way it registers extra scenarios.

Every rule belongs to an *exit class* — a bit in the CLI's exit code — so
CI logs show at a glance which invariant family regressed:

==========================  ===  ============================================
exit bit                    val  rule class
==========================  ===  ============================================
``EXIT_RNG``                  1  RNG discipline (seeds flow from SeedSequence)
``EXIT_WALL_CLOCK``           2  wall-clock discipline (VirtualClock owns time)
``EXIT_SILENT_FALLBACK``      4  silent fallback defaults / swallowed errors
``EXIT_STRICT_JSON``          8  strict-JSON hygiene (``allow_nan=False``)
``EXIT_NAN_RECORD``          16  NaN literals entering record fields
``EXIT_CONTRACT``            32  import-time contract audit
``EXIT_PRAGMA``              64  pragma hygiene (unknown rule, bare pragma)
==========================  ===  ============================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol, runtime_checkable

from ..exceptions import ConfigurationError
from .pragmas import PragmaIndex
from .violations import Violation

__all__ = [
    "EXIT_CONTRACT",
    "EXIT_NAN_RECORD",
    "EXIT_PRAGMA",
    "EXIT_RNG",
    "EXIT_SILENT_FALLBACK",
    "EXIT_STRICT_JSON",
    "EXIT_WALL_CLOCK",
    "FileContext",
    "LintRule",
    "all_rules",
    "exit_code_for",
    "get_rule",
    "register_rule",
    "rule_catalogue",
    "rule_names",
]

EXIT_RNG = 1
EXIT_WALL_CLOCK = 2
EXIT_SILENT_FALLBACK = 4
EXIT_STRICT_JSON = 8
EXIT_NAN_RECORD = 16
EXIT_CONTRACT = 32
EXIT_PRAGMA = 64


@dataclass(frozen=True)
class FileContext:
    """Everything a rule needs about one parsed source file."""

    path: Path
    relpath: str
    source: str
    tree: ast.AST
    pragmas: PragmaIndex
    lines: tuple[str, ...] = field(default_factory=tuple)

    @classmethod
    def from_source(cls, path: Path, relpath: str, source: str) -> "FileContext":
        """Parse a file's source into a ready-to-lint context."""
        return cls(
            path=path,
            relpath=relpath,
            source=source,
            tree=ast.parse(source, filename=str(path)),
            pragmas=PragmaIndex.from_source(source),
            lines=tuple(source.splitlines()),
        )

    def snippet(self, line: int) -> str:
        """The stripped source line at ``line`` (empty when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def violation(self, rule: "LintRule", line: int, message: str) -> Violation:
        """Build a violation located in this file."""
        return Violation(
            path=self.relpath,
            line=line,
            rule=rule.name,
            message=message,
            snippet=self.snippet(line),
        )


@runtime_checkable
class LintRule(Protocol):
    """One machine-checked invariant over a source file's AST.

    Attributes
    ----------
    name:
        Registry key, and the name pragmas suppress (``"wall-clock"``).
    description:
        One line for ``--list-rules`` and the README table.
    exit_bit:
        The rule's exit class (one of the ``EXIT_*`` constants).
    scope:
        Package-directory names the rule is confined to (empty = every
        file).  A file is in scope when any of its path parts, relative
        to the lint root, matches a scope entry — so the wall-clock rule
        applies under ``physics/`` but not under ``campaign/``, whose
        telemetry wall timers are sanctioned.
    """

    name: str
    description: str
    exit_bit: int
    scope: tuple[str, ...]

    def check(self, ctx: FileContext) -> list[Violation]:
        """Scan one file; return every violation found (pragmas are the
        engine's business, not the rule's)."""
        ...


#: Registered rules, in registration order (mirrors the other registries).
_REGISTRY: dict[str, LintRule] = {}


def register_rule(rule: LintRule, overwrite: bool = False) -> LintRule:
    """Add a rule to the registry (returns it, so it chains)."""
    if rule.name in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"lint rule {rule.name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _REGISTRY[rule.name] = rule
    return rule


def get_rule(name: str) -> LintRule:
    """Look a rule up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown lint rule {name!r}; known: {', '.join(rule_names())}"
        ) from None


def rule_names() -> tuple[str, ...]:
    """Registered rule names, in registration order."""
    return tuple(_REGISTRY)


def all_rules() -> tuple[LintRule, ...]:
    """Every registered rule, in registration order."""
    return tuple(_REGISTRY.values())


def rule_catalogue() -> str:
    """Plain-text table of every registered rule (name, exit bit, summary)."""
    lines = ["Lint rule catalogue", "=" * 19]
    width = max((len(name) for name in _REGISTRY), default=0)
    for rule in _REGISTRY.values():
        scope = ", ".join(rule.scope) if rule.scope else "everywhere"
        lines.append(f"{rule.name:<{width}}  [exit {rule.exit_bit:>2}]  {rule.description}")
        lines.append(f"{'':<{width}}             scope: {scope}")
    return "\n".join(lines)


def exit_code_for(violations: list[Violation]) -> int:
    """OR together the exit bits of every rule that fired."""
    code = 0
    for violation in violations:
        try:
            code |= get_rule(violation.rule).exit_bit
        except ConfigurationError:
            # Contract and pragma findings use reserved rule names that are
            # not in the registry; map them by prefix.
            if violation.rule.startswith("contract-"):
                code |= EXIT_CONTRACT
            else:
                code |= EXIT_PRAGMA
    return code
