"""Contract-audit and custom lint subsystem for the repo's own invariants.

Five PRs of review passes kept re-catching the same classes of bug by hand:
unseeded RNG and wall-clock reads breaking bit-identical determinism,
address-bearing ``__repr__``\\ s poisoning checkpoint fingerprints, silent
fallback defaults (the ``("P1", "P2")`` gate-name bug), and ``as_dict`` /
``from_dict`` drift in strict-JSON records.  This package turns those
reviewer-folklore invariants into a machine-checked gate with two halves:

* **AST lint rules** (:mod:`repro.lint.ast_rules`) — a :class:`~repro.lint.rules.LintRule`
  protocol plus a rule registry mirroring the scenario/pipeline/backend
  registries, walking every source file for RNG discipline, wall-clock
  discipline, silent fallbacks, strict-JSON hygiene, and NaN literals
  flowing into record fields.
* **Import-time contract audit** (:mod:`repro.lint.contracts`) — for every
  class reachable from the scenario, pipeline, and execution registries and
  every strict-JSON record class: picklability under spawn semantics,
  content-based (address-free) ``__repr__``, ``as_dict`` → ``from_dict``
  round-trip closure, and registry name/alias uniqueness.

Run it as ``python -m repro.lint`` (see :mod:`repro.lint.cli`); suppress a
single deliberate violation with an inline ``# repro: allow[rule-name] --
justification`` pragma (:mod:`repro.lint.pragmas`) or a whole known-debt
set with a baseline file (:mod:`repro.lint.baseline`).
"""

from __future__ import annotations

# Importing the built-in rules registers them, exactly like the scenario
# and pipeline catalogues populate their registries on import.
from . import ast_rules as _ast_rules  # noqa: F401  (import for side effect)
from .baseline import Baseline
from .contracts import (
    register_contract_sample,
    run_contract_audit,
    spawn_roundtrip,
)
from .engine import LintReport, lint_paths, run_lint
from .pragmas import PragmaIndex
from .rules import (
    FileContext,
    LintRule,
    all_rules,
    get_rule,
    register_rule,
    rule_catalogue,
    rule_names,
)
from .violations import Violation

__all__ = [
    "Baseline",
    "FileContext",
    "LintReport",
    "LintRule",
    "PragmaIndex",
    "Violation",
    "all_rules",
    "get_rule",
    "lint_paths",
    "register_contract_sample",
    "register_rule",
    "rule_catalogue",
    "rule_names",
    "run_contract_audit",
    "run_lint",
    "spawn_roundtrip",
]
