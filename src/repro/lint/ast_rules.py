"""Built-in AST lint rules encoding the repo's determinism invariants.

Each rule is one recurring review-pass bug class from PRs 1–5, promoted
from reviewer folklore to a machine check:

``rng-global-state``
    Randomness must flow from a caller-supplied seed through
    :func:`numpy.random.default_rng` (see :mod:`repro.seeding`).  The
    module-level ``np.random.*`` functions and the stdlib :mod:`random`
    module share hidden global state, so any call site silently couples
    every run in the process — bit-identical parallel campaigns are
    impossible once one sneaks in.
``rng-unseeded``
    ``default_rng()`` with no arguments draws fresh OS entropy.  Seeds
    must arrive explicitly (ultimately from a ``SeedSequence``), even if
    the value is ``None`` at the API boundary — the *call site* has to
    show where the seed flows from.
``wall-clock``
    Simulated time belongs to :class:`~repro.instrument.timing.VirtualClock`.
    Reading the wall clock inside ``physics/``, ``instrument/``,
    ``pipeline/``, or ``core/`` leaks nondeterminism into results;
    telemetry wall timers in those packages carry an inline
    ``# repro: allow[wall-clock]`` pragma.
``silent-fallback``
    The ``("P1", "P2")`` gate-name bug class: a lookup that quietly
    substitutes a hard-coded default produces *plausible but wrong*
    results instead of a loud error.  Flags bare ``except:``, swallowed
    ``except Exception: pass``, and ``dict.get`` / ``getattr`` with
    hard-coded tuple defaults or gate/config-keyed string defaults.
``strict-json``
    Every ``json.dump(s)`` must pass ``allow_nan=False``: Python's
    default emits ``NaN`` / ``Infinity`` tokens no strict parser accepts,
    which breaks the checkpoint journal and record round-trip contracts.
``nan-record-field``
    A ``float("nan")`` literal flowing into a record constructor keyword
    must be deliberate: NaN fields need the tagged-dict JSON encoding and
    NaN-aware equality (:mod:`repro.campaign.results`), so each such site
    carries a pragma explaining which contract makes it safe.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .rules import (
    EXIT_NAN_RECORD,
    EXIT_RNG,
    EXIT_SILENT_FALLBACK,
    EXIT_STRICT_JSON,
    EXIT_WALL_CLOCK,
    FileContext,
    register_rule,
)
from .violations import Violation

__all__ = [
    "NanRecordFieldRule",
    "RngGlobalStateRule",
    "RngUnseededRule",
    "SilentFallbackRule",
    "StrictJsonRule",
    "WallClockRule",
]

#: Packages where simulated time is the only legal clock.
CLOCKED_PACKAGES = ("physics", "instrument", "pipeline", "core")


def dotted_name(node: ast.AST) -> str:
    """Flatten ``a.b.c`` attribute chains to ``"a.b.c"`` ("" if not one)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_nonfinite_float_literal(node: ast.AST) -> bool:
    """Whether ``node`` is ``float("nan")`` / ``float("inf")`` / ``float("-inf")``."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
        and len(node.args) == 1
        and not node.keywords
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
        and node.args[0].value.strip().lower().lstrip("+-") in ("nan", "inf", "infinity")
    )


@dataclass(frozen=True)
class RngGlobalStateRule:
    """No hidden-global-state randomness: ``np.random.*`` / stdlib ``random``."""

    name: str = "rng-global-state"
    description: str = (
        "randomness must flow from default_rng(seed); np.random.* module "
        "functions and the stdlib random module share hidden global state"
    )
    exit_bit: int = EXIT_RNG
    scope: tuple[str, ...] = ()

    #: ``np.random`` attributes that are legitimate, stateless entry points.
    ALLOWED_NUMPY: tuple[str, ...] = (
        "default_rng",
        "SeedSequence",
        "Generator",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    )

    def check(self, ctx: FileContext) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                violations.append(
                    ctx.violation(
                        self,
                        node.lineno,
                        "importing from the stdlib random module pulls in its "
                        "process-global generator; use numpy.random.default_rng "
                        "with an explicit seed instead",
                    )
                )
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if not dotted:
                continue
            parts = dotted.split(".")
            if (
                len(parts) >= 3
                and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] not in self.ALLOWED_NUMPY
            ):
                violations.append(
                    ctx.violation(
                        self,
                        node.lineno,
                        f"{dotted}() drives numpy's module-global generator "
                        "(or the legacy RandomState API); derive a local "
                        "generator with default_rng(seed) so seeds flow from "
                        "SeedSequence",
                    )
                )
            elif parts[0] == "random" and len(parts) == 2 and parts[1][:1].islower():
                violations.append(
                    ctx.violation(
                        self,
                        node.lineno,
                        f"{dotted}() uses the stdlib process-global generator; "
                        "use numpy.random.default_rng with an explicit seed",
                    )
                )
        return violations


@dataclass(frozen=True)
class RngUnseededRule:
    """``default_rng()`` with no arguments draws hidden OS entropy."""

    name: str = "rng-unseeded"
    description: str = (
        "default_rng() without an argument draws fresh OS entropy; the call "
        "site must show where the seed flows from (a SeedSequence-derived "
        "value, even when it is None at the API boundary)"
    )
    exit_bit: int = EXIT_RNG
    scope: tuple[str, ...] = ()

    def check(self, ctx: FileContext) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and not node.args and not node.keywords):
                continue
            dotted = dotted_name(node.func)
            if dotted.split(".")[-1] == "default_rng":
                violations.append(
                    ctx.violation(
                        self,
                        node.lineno,
                        "default_rng() called without a seed; pass the seed "
                        "explicitly so determinism is auditable at the call site",
                    )
                )
        return violations


@dataclass(frozen=True)
class WallClockRule:
    """VirtualClock owns simulated time in the clocked packages."""

    name: str = "wall-clock"
    description: str = (
        "no wall-clock reads in physics/instrument/pipeline/core — "
        "VirtualClock owns simulated time; telemetry wall timers carry "
        "# repro: allow[wall-clock]"
    )
    exit_bit: int = EXIT_WALL_CLOCK
    scope: tuple[str, ...] = CLOCKED_PACKAGES

    TIME_FUNCTIONS: tuple[str, ...] = (
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "sleep",
    )
    DATETIME_FUNCTIONS: tuple[str, ...] = ("now", "utcnow", "today")

    def check(self, ctx: FileContext) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                imported = [
                    alias.name for alias in node.names if alias.name in self.TIME_FUNCTIONS
                ]
                if imported:
                    violations.append(
                        ctx.violation(
                            self,
                            node.lineno,
                            f"importing {', '.join(imported)} from time hides "
                            "wall-clock reads from review; call through the "
                            "module so every read is visible (and pragma'd)",
                        )
                    )
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if not dotted:
                continue
            parts = dotted.split(".")
            if parts[0] == "time" and len(parts) == 2 and parts[1] in self.TIME_FUNCTIONS:
                violations.append(
                    ctx.violation(
                        self,
                        node.lineno,
                        f"{dotted}() reads the wall clock inside a simulated-"
                        "time package; route timing through VirtualClock, or "
                        "pragma a telemetry-only timer",
                    )
                )
            elif parts[-1] in self.DATETIME_FUNCTIONS and any(
                part in ("datetime", "date") for part in parts[:-1]
            ):
                violations.append(
                    ctx.violation(
                        self,
                        node.lineno,
                        f"{dotted}() reads the wall clock inside a simulated-"
                        "time package; route timing through VirtualClock",
                    )
                )
        return violations


#: Lookup keys whose hard-coded string defaults have historically produced
#: plausible-but-wrong results (the ("P1", "P2") gate-name bug class).
_RISKY_KEY_MARKERS = ("gate", "method", "pipeline", "scenario", "backend", "config")


def _is_risky_key(value: object) -> bool:
    return isinstance(value, str) and any(
        marker in value.lower() for marker in _RISKY_KEY_MARKERS
    )


@dataclass(frozen=True)
class SilentFallbackRule:
    """No quietly substituted defaults on failure paths or risky lookups."""

    name: str = "silent-fallback"
    description: str = (
        "no bare except, no swallowed exceptions, and no dict.get/getattr "
        "with hard-coded tuple or gate/config-keyed string defaults — "
        "failed lookups must fail loudly"
    )
    exit_bit: int = EXIT_SILENT_FALLBACK
    scope: tuple[str, ...] = ()

    def check(self, ctx: FileContext) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler):
                self._check_handler(ctx, node, violations)
            elif isinstance(node, ast.Call):
                self._check_lookup(ctx, node, violations)
        return violations

    def _check_handler(
        self, ctx: FileContext, node: ast.ExceptHandler, out: list[Violation]
    ) -> None:
        if node.type is None:
            out.append(
                ctx.violation(
                    self,
                    node.lineno,
                    "bare except: catches SystemExit and KeyboardInterrupt "
                    "and hides the failure class; catch a named exception",
                )
            )
            return
        swallows = len(node.body) == 1 and isinstance(node.body[0], ast.Pass)
        broad = isinstance(node.type, ast.Name) and node.type.id in (
            "Exception",
            "BaseException",
        )
        if swallows and broad:
            out.append(
                ctx.violation(
                    self,
                    node.lineno,
                    f"except {node.type.id}: pass swallows every failure "
                    "silently; handle, record, or re-raise it",
                )
            )

    def _check_lookup(
        self, ctx: FileContext, node: ast.Call, out: list[Violation]
    ) -> None:
        default: ast.AST | None = None
        what = ""
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and len(node.args) == 2
        ):
            key, default = node.args
            what = "dict.get"
        elif (
            isinstance(node.func, ast.Name)
            and node.func.id == "getattr"
            and len(node.args) == 3
        ):
            key, default = node.args[1], node.args[2]
            what = "getattr"
        if default is None:
            return
        if (
            isinstance(default, ast.Tuple)
            and default.elts
            and all(isinstance(element, ast.Constant) for element in default.elts)
        ):
            out.append(
                ctx.violation(
                    self,
                    node.lineno,
                    f"{what} with a hard-coded tuple default silently "
                    "substitutes fixed values when the lookup misses (the "
                    '("P1", "P2") gate-name bug); raise on a missing key instead',
                )
            )
            return
        key_value = key.value if isinstance(key, ast.Constant) else None
        if (
            _is_risky_key(key_value)
            and isinstance(default, ast.Constant)
            and isinstance(default.value, (str, int, float))
        ):
            out.append(
                ctx.violation(
                    self,
                    node.lineno,
                    f"{what}({key_value!r}, ...) quietly falls back to a "
                    "hard-coded default on a gate/config-class lookup; "
                    "resolve it loudly so a miss cannot mislabel results",
                )
            )


@dataclass(frozen=True)
class StrictJsonRule:
    """Every ``json.dump(s)`` call must pass ``allow_nan=False``."""

    name: str = "strict-json"
    description: str = (
        "json.dump/json.dumps must pass allow_nan=False; the default emits "
        "NaN/Infinity tokens that break strict parsers and the record "
        "round-trip contract"
    )
    exit_bit: int = EXIT_STRICT_JSON
    scope: tuple[str, ...] = ()

    def check(self, ctx: FileContext) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted not in ("json.dump", "json.dumps"):
                continue
            strict = any(
                keyword.arg == "allow_nan"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
                for keyword in node.keywords
            )
            if not strict:
                violations.append(
                    ctx.violation(
                        self,
                        node.lineno,
                        f"{dotted}(...) without allow_nan=False can emit "
                        "NaN/Infinity tokens; encode non-finite floats "
                        "explicitly (tagged dicts) and pass allow_nan=False",
                    )
                )
        return violations


@dataclass(frozen=True)
class NanRecordFieldRule:
    """``float("nan")`` literals must not flow into record constructors."""

    name: str = "nan-record-field"
    description: str = (
        'float("nan")/float("inf") literals flowing into record-constructor '
        "keywords need the tagged-JSON and NaN-aware-equality contracts; "
        "each site carries a pragma naming the contract that makes it safe"
    )
    exit_bit: int = EXIT_NAN_RECORD
    scope: tuple[str, ...] = ()

    def check(self, ctx: FileContext) -> list[Violation]:
        violations: list[Violation] = []
        # Names assigned a non-finite literal, with the assignment line:
        # ``x = float("nan")`` followed by ``SomeRecord(field=x)`` flags the
        # assignment (where the literal — and the pragma — naturally live).
        assigned: dict[str, int] = {}
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _is_nonfinite_float_literal(node.value)
            ):
                assigned[node.targets[0].id] = node.lineno
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func).split(".")[-1]
            if not callee[:1].isupper():
                continue
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                if _is_nonfinite_float_literal(keyword.value):
                    violations.append(
                        ctx.violation(
                            self,
                            keyword.value.lineno,
                            f"non-finite float literal passed directly to "
                            f"{callee}({keyword.arg}=...); record fields need "
                            "the tagged-JSON encoding contract — fix or pragma "
                            "with the contract that applies",
                        )
                    )
                elif (
                    isinstance(keyword.value, ast.Name)
                    and keyword.value.id in assigned
                ):
                    violations.append(
                        ctx.violation(
                            self,
                            assigned[keyword.value.id],
                            f"float non-finite literal assigned to "
                            f"{keyword.value.id!r} flows into "
                            f"{callee}({keyword.arg}=...); fix or pragma with "
                            "the contract that makes NaN safe in this record",
                        )
                    )
        return violations


for _rule in (
    RngGlobalStateRule(),
    RngUnseededRule(),
    WallClockRule(),
    SilentFallbackRule(),
    StrictJsonRule(),
    NanRecordFieldRule(),
):
    register_rule(_rule)
