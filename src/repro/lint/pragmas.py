"""Inline suppression pragmas: ``# repro: allow[rule-name] -- justification``.

A pragma silences the named rule(s) on its own source line only — broad
waivers belong in a baseline file, not scattered through the code.  The
syntax is deliberately rigid so a typo cannot silently disable nothing:

``# repro: allow[wall-clock]``
    Suppress the ``wall-clock`` rule on this line.
``# repro: allow[wall-clock,strict-json] -- telemetry wall timer``
    Suppress several rules, with a recorded justification.

Unknown rule names in a pragma are themselves reported (rule
``pragma-hygiene``), and in ``--strict`` mode a pragma without a
justification is too: the acceptance bar is "fixed, or pragma'd *with
justification*".
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<why>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# repro: allow[...]`` comment."""

    line: int
    rules: tuple[str, ...]
    justification: str = ""

    @property
    def is_bare(self) -> bool:
        """Whether the pragma omits the ``-- justification`` trailer."""
        return not self.justification


@dataclass(frozen=True)
class PragmaIndex:
    """Every pragma in one file, indexed by line for suppression lookups."""

    by_line: dict[int, Pragma] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str) -> "PragmaIndex":
        """Parse all pragmas out of a file's source text.

        Tokenises rather than regex-scanning whole lines, so pragma syntax
        *mentioned inside a string or docstring* (this module's own docs,
        a lint rule's error message) is not mistaken for a live pragma.
        """
        by_line: dict[int, Pragma] = {}
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            match = PRAGMA_RE.search(token.string)
            if match is None:
                continue
            lineno = token.start[0]
            rules = tuple(
                name.strip() for name in match.group("rules").split(",") if name.strip()
            )
            by_line[lineno] = Pragma(
                line=lineno,
                rules=rules,
                justification=(match.group("why") or "").strip(),
            )
        return cls(by_line=by_line)

    def allows(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is suppressed on ``line``."""
        pragma = self.by_line.get(line)
        return pragma is not None and rule in pragma.rules

    def pragma_for(self, rule: str, line: int) -> Pragma | None:
        """The pragma suppressing ``rule`` on ``line``, if any."""
        pragma = self.by_line.get(line)
        if pragma is not None and rule in pragma.rules:
            return pragma
        return None

    def all_pragmas(self) -> tuple[Pragma, ...]:
        """Every pragma in the file, in line order."""
        return tuple(self.by_line[line] for line in sorted(self.by_line))
