"""Two-piece-wise linear fit of the transition lines (paper §4.3.3).

The filtered transition points trace two straight lines that meet near the
triple point.  Following the paper, the fit parameterises the shape by the two
*initial anchor points* (which are taken as fixed, they are known to lie on
the lines) and the intersection point ``(x0, y0)`` — only the intersection is
free.  SciPy's ``curve_fit`` finds the intersection that minimises the
vertical residuals of the filtered points; the two slopes then follow from the
anchor points and the fitted intersection.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from ..exceptions import FitError
from .config import FitConfig
from .result import SlopeFitResult


def piecewise_transition_model(
    x: np.ndarray,
    x0: float,
    y0: float,
    steep_anchor_v: tuple[float, float],
    shallow_anchor_v: tuple[float, float],
) -> np.ndarray:
    """Two-segment transition-line shape evaluated at x-axis voltages ``x``.

    For ``x <= x0`` the shape follows the shallow line through the shallow
    anchor and ``(x0, y0)``; for ``x > x0`` it follows the steep line through
    ``(x0, y0)`` and the steep anchor.
    """
    x = np.asarray(x, dtype=float)
    vx_steep, vy_steep = steep_anchor_v
    vx_shallow, vy_shallow = shallow_anchor_v
    shallow_den = x0 - vx_shallow
    steep_den = vx_steep - x0
    shallow_den = shallow_den if abs(shallow_den) > 1e-12 else 1e-12
    steep_den = steep_den if abs(steep_den) > 1e-12 else 1e-12
    shallow_slope = (y0 - vy_shallow) / shallow_den
    steep_slope = (vy_steep - y0) / steep_den
    shallow_branch = vy_shallow + shallow_slope * (x - vx_shallow)
    steep_branch = y0 + steep_slope * (x - x0)
    return np.where(x <= x0, shallow_branch, steep_branch)


class TransitionLineFitter:
    """Fit the intersection point and extract the two transition slopes."""

    def __init__(self, config: FitConfig | None = None) -> None:
        self._config = config or FitConfig()

    @property
    def config(self) -> FitConfig:
        """The fit configuration."""
        return self._config

    def fit(
        self,
        points_voltage: np.ndarray,
        steep_anchor_v: tuple[float, float],
        shallow_anchor_v: tuple[float, float],
    ) -> SlopeFitResult:
        """Fit the two-piece shape to transition points given in volts.

        Parameters
        ----------
        points_voltage:
            Array of shape ``(n, 2)`` with columns ``(vx, vy)``.
        steep_anchor_v, shallow_anchor_v:
            Voltage coordinates of the two initial anchor points.

        Raises
        ------
        FitError
            If there are too few points or the optimiser fails outright.
        """
        points = np.asarray(points_voltage, dtype=float)
        if points.ndim != 2 or points.shape[1] != 2:
            raise FitError(f"points must have shape (n, 2), got {points.shape}")
        if points.shape[0] < self._config.min_points:
            raise FitError(
                f"need at least {self._config.min_points} transition points to fit, "
                f"got {points.shape[0]}"
            )
        vx_steep, vy_steep = steep_anchor_v
        vx_shallow, vy_shallow = shallow_anchor_v
        if not (vx_steep > vx_shallow and vy_shallow > vy_steep):
            raise FitError(
                "anchor points are not in the expected arrangement "
                "(steep anchor right/below, shallow anchor left/above)"
            )
        x_data = points[:, 0]
        y_data = points[:, 1]

        def model(x: np.ndarray, x0: float, y0: float) -> np.ndarray:
            return piecewise_transition_model(
                x, x0, y0, (vx_steep, vy_steep), (vx_shallow, vy_shallow)
            )

        span_x = vx_steep - vx_shallow
        span_y = vy_shallow - vy_steep
        p0 = (vx_shallow + 0.85 * span_x, vy_steep + 0.85 * span_y)
        eps_x = 1e-6 * span_x
        eps_y = 1e-6 * span_y
        bounds = (
            (vx_shallow + eps_x, vy_steep + eps_y),
            (vx_steep - eps_x, vy_shallow - eps_y),
        )
        converged = True
        try:
            popt, _ = optimize.curve_fit(
                model,
                x_data,
                y_data,
                p0=p0,
                bounds=bounds,
                maxfev=self._config.max_function_evaluations,
            )
        except (RuntimeError, ValueError) as exc:
            raise FitError(f"transition-line fit did not converge: {exc}") from exc
        x0, y0 = float(popt[0]), float(popt[1])
        residuals = y_data - model(x_data, x0, y0)
        residual_rms = float(np.sqrt(np.mean(residuals**2)))

        steep_den = vx_steep - x0
        shallow_den = x0 - vx_shallow
        steep_slope = (vy_steep - y0) / (steep_den if abs(steep_den) > 1e-12 else 1e-12)
        shallow_slope = (y0 - vy_shallow) / (
            shallow_den if abs(shallow_den) > 1e-12 else 1e-12
        )
        return SlopeFitResult(
            intersection_voltage=(x0, y0),
            slope_steep=float(steep_slope),
            slope_shallow=float(shallow_slope),
            residual_rms=residual_rms,
            n_points_used=int(points.shape[0]),
            converged=converged,
        )
