"""Coarse search for the voltage window that contains the first transitions.

The paper (and its benchmark data) starts from CSD windows that have already
been cropped around the lowest charge states — on a real device someone has to
*find* that window first.  This module automates the step with the same
philosophy as the paper's extraction: spend as few probes as possible.

:class:`TransitionWindowFinder` runs one coarse scan (default 24x24 = 576
probes, independent of how fine the final window will be sampled) over the
full safe gate range and analyses the positively tilted gradient feature of
the coarse image:

1. only pixels whose feature exceeds a fraction of the *maximum* feature count
   as transition pixels (charge-transition steps are by far the sharpest
   structure in a workable scan, so this is robust to the noise floor);
2. in every row, the first transition pixel from the left marks where the
   lowest nearly-vertical addition line crosses that row; the median over the
   bottom rows gives the x-coordinate of the (0,0) corner.  The transpose
   gives the y-coordinate from the left columns;
3. the median gap between the first and second transition pixels of those rows
   (columns) estimates the addition-voltage spacing, which sets the window
   size.

The result feeds straight into
:class:`~repro.instrument.session.ExperimentSession.from_device` or
:class:`~repro.core.workflow.AutoTuningWorkflow`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ExtractionError
from ..instrument.measurement import ChargeSensorMeter, DeviceBackend
from ..instrument.timing import TimingModel, VirtualClock
from ..physics.dot_array import DotArrayDevice
from ..physics.drift import DeviceDrift
from ..physics.noise import NoiseModel


@dataclass(frozen=True)
class WindowSearchConfig:
    """Parameters of the coarse transition-window search.

    Attributes
    ----------
    coarse_resolution:
        Pixels per axis of the coarse scan.  576 probes (24x24) cost ~29 s of
        dwell time — a small fraction of even one fast extraction — and locate
        the first-transition corner to about one coarse pixel.
    relative_threshold:
        Fraction of the maximum gradient feature a pixel must exceed to count
        as a transition pixel.
    edge_fraction:
        Fraction of the rows (from the bottom) and columns (from the left)
        whose first-transition positions are aggregated into the corner
        estimate.
    span_in_spacings:
        Full window span expressed in units of the estimated addition-voltage
        spacing; ~1.2 comfortably contains the four lowest charge regions.
    fallback_span_fraction:
        Window span as a fraction of the coarse scan range, used when no
        second transition is visible to estimate the spacing from.
    """

    coarse_resolution: int = 24
    relative_threshold: float = 0.4
    edge_fraction: float = 0.3
    span_in_spacings: float = 1.2
    fallback_span_fraction: float = 0.3
    min_peak_to_background: float = 5.0

    def __post_init__(self) -> None:
        if self.coarse_resolution < 8:
            raise ExtractionError("coarse_resolution must be at least 8")
        if not 0 < self.relative_threshold < 1:
            raise ExtractionError("relative_threshold must lie in (0, 1)")
        if self.min_peak_to_background <= 1:
            raise ExtractionError("min_peak_to_background must exceed 1")
        if not 0 < self.edge_fraction <= 1:
            raise ExtractionError("edge_fraction must lie in (0, 1]")
        if self.span_in_spacings <= 0:
            raise ExtractionError("span_in_spacings must be positive")
        if not 0 < self.fallback_span_fraction <= 1:
            raise ExtractionError("fallback_span_fraction must lie in (0, 1]")


@dataclass(frozen=True)
class WindowSearchResult:
    """Outcome of the coarse window search."""

    window: tuple[tuple[float, float], tuple[float, float]]
    corner_voltage: tuple[float, float]
    estimated_spacing: tuple[float, float]
    n_probes: int
    elapsed_s: float
    coarse_image: np.ndarray

    @property
    def x_window(self) -> tuple[float, float]:
        """The x-axis (gate_x) voltage window."""
        return self.window[0]

    @property
    def y_window(self) -> tuple[float, float]:
        """The y-axis (gate_y) voltage window."""
        return self.window[1]

    def contains(self, vx: float, vy: float) -> bool:
        """Whether a voltage point lies inside the found window."""
        (x_min, x_max), (y_min, y_max) = self.window
        return x_min <= vx <= x_max and y_min <= vy <= y_max


def tilted_gradient_image(image: np.ndarray) -> np.ndarray:
    """Positively tilted gradient feature of a full image (vectorised Alg. 2).

    ``g[r, c] = (I[r, c] - I[r, c+1]) + (I[r, c] - I[r+1, c+1])`` with edge
    clamping, i.e. exactly the probe-level feature gradient evaluated on every
    pixel of an already measured image.
    """
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ExtractionError("tilted_gradient_image expects a 2-D image")
    right = np.empty_like(image)
    right[:, :-1] = image[:, 1:]
    right[:, -1] = image[:, -1]
    upper_right = np.empty_like(image)
    upper_right[:-1, :-1] = image[1:, 1:]
    upper_right[-1, :] = right[-1, :]
    upper_right[:-1, -1] = image[1:, -1]
    return (image - right) + (image - upper_right)


def _first_and_second_crossings(mask_line: np.ndarray) -> tuple[int | None, int | None]:
    """Indices of the first two separated transition pixels along one line.

    Consecutive above-threshold pixels belong to the same (coarsely sampled)
    transition line; the second crossing must be separated from the first by
    at least one below-threshold pixel.
    """
    indices = np.nonzero(mask_line)[0]
    if indices.size == 0:
        return None, None
    first = int(indices[0])
    rest = indices[indices > first + 1]
    second = int(rest[0]) if rest.size else None
    return first, second


class TransitionWindowFinder:
    """Locate a CSD window containing the lowest charge transitions."""

    def __init__(
        self,
        device: DotArrayDevice,
        gate_x: int | str = "P1",
        gate_y: int | str = "P2",
        x_range: tuple[float, float] | None = None,
        y_range: tuple[float, float] | None = None,
        fixed_voltages: np.ndarray | list | None = None,
        noise: NoiseModel | None = None,
        seed: int | np.random.SeedSequence | None = None,
        timing: TimingModel | None = None,
        config: WindowSearchConfig | None = None,
        drift: DeviceDrift | None = None,
        time_dependent_noise: bool = False,
    ) -> None:
        self._device = device
        self._gate_x = device.gate_index(gate_x)
        self._gate_y = device.gate_index(gate_y)
        spec_x = device.gate_specs[self._gate_x]
        spec_y = device.gate_specs[self._gate_y]
        self._x_range = x_range or (spec_x.min_voltage, spec_x.max_voltage)
        self._y_range = y_range or (spec_y.min_voltage, spec_y.max_voltage)
        if self._x_range[1] <= self._x_range[0] or self._y_range[1] <= self._y_range[0]:
            raise ExtractionError("search ranges must have positive extent")
        self._fixed = fixed_voltages
        self._noise = noise
        self._seed = seed
        self._timing = timing or TimingModel.paper_default()
        self._config = config or WindowSearchConfig()
        self._drift = drift
        self._time_dependent_noise = bool(time_dependent_noise)

    @property
    def config(self) -> WindowSearchConfig:
        """The search configuration."""
        return self._config

    # ------------------------------------------------------------------
    def _coarse_meter(self) -> ChargeSensorMeter:
        n = self._config.coarse_resolution
        xs = np.linspace(self._x_range[0], self._x_range[1], n)
        ys = np.linspace(self._y_range[0], self._y_range[1], n)
        backend = DeviceBackend(
            self._device,
            x_voltages=xs,
            y_voltages=ys,
            gate_x=self._gate_x,
            gate_y=self._gate_y,
            fixed_voltages=self._fixed,
            noise=self._noise,
            seed=self._seed,
            drift=self._drift,
            time_dependent_noise=self._time_dependent_noise,
            probe_interval_s=self._timing.cost_per_probe_s,
        )
        return ChargeSensorMeter(backend, clock=VirtualClock(self._timing))

    def find(self) -> WindowSearchResult:
        """Run the coarse scan and return the transition window."""
        meter = self._coarse_meter()
        image = meter.acquire_full_grid()
        gradient = tilted_gradient_image(image)
        xs = meter.x_voltages
        ys = meter.y_voltages
        cfg = self._config

        peak = float(np.max(gradient))
        background = float(np.median(np.abs(gradient)))
        if peak <= 0 or peak < cfg.min_peak_to_background * max(background, 1e-15):
            raise ExtractionError(
                "the coarse scan shows no charge-transition feature that stands out "
                "from the background; the search range probably contains no charge "
                "transition (or the noise floor hides it)"
            )
        mask = gradient > cfg.relative_threshold * peak
        if not np.any(mask):
            raise ExtractionError("no charge transition feature found in the coarse scan")

        n_edge = max(2, int(round(cfg.edge_fraction * mask.shape[0])))
        pixel_x = float(xs[1] - xs[0])
        pixel_y = float(ys[1] - ys[0])

        # Corner x and spacing x from the bottom rows (they cross the nearly
        # vertical addition lines of the x-axis dot).
        first_cols: list[int] = []
        col_gaps: list[int] = []
        for row in range(n_edge):
            first, second = _first_and_second_crossings(mask[row, :])
            if first is None:
                continue
            first_cols.append(first)
            if second is not None:
                col_gaps.append(second - first)
        # Corner y and spacing y from the left columns.
        first_rows: list[int] = []
        row_gaps: list[int] = []
        for col in range(n_edge):
            first, second = _first_and_second_crossings(mask[:, col])
            if first is None:
                continue
            first_rows.append(first)
            if second is not None:
                row_gaps.append(second - first)
        if not first_cols or not first_rows:
            raise ExtractionError(
                "the coarse scan did not show a transition along both axes; widen "
                "the search range or increase coarse_resolution"
            )
        corner_vx = float(xs[int(np.median(first_cols))])
        corner_vy = float(ys[int(np.median(first_rows))])

        spacing_x = (
            float(np.median(col_gaps)) * pixel_x
            if col_gaps
            else cfg.fallback_span_fraction * float(xs[-1] - xs[0])
        )
        spacing_y = (
            float(np.median(row_gaps)) * pixel_y
            if row_gaps
            else cfg.fallback_span_fraction * float(ys[-1] - ys[0])
        )
        spacing_x = max(spacing_x, 2.0 * pixel_x)
        spacing_y = max(spacing_y, 2.0 * pixel_y)

        window = (
            self._centered_span(corner_vx, cfg.span_in_spacings * spacing_x, self._x_range),
            self._centered_span(corner_vy, cfg.span_in_spacings * spacing_y, self._y_range),
        )
        return WindowSearchResult(
            window=window,
            corner_voltage=(corner_vx, corner_vy),
            estimated_spacing=(spacing_x, spacing_y),
            n_probes=meter.n_probes,
            elapsed_s=meter.elapsed_s,
            coarse_image=image,
        )

    @staticmethod
    def _centered_span(
        center: float, span: float, allowed: tuple[float, float]
    ) -> tuple[float, float]:
        """A window of width ``span`` centred on ``center``, kept inside ``allowed``."""
        span = min(span, allowed[1] - allowed[0])
        low = center - 0.5 * span
        high = center + 0.5 * span
        if low < allowed[0]:
            high += allowed[0] - low
            low = allowed[0]
        if high > allowed[1]:
            low -= high - allowed[1]
            high = allowed[1]
        low = max(low, allowed[0])
        if high <= low:
            raise ExtractionError("window search produced a degenerate window")
        return low, high
