"""Virtualization matrices: the output of virtual gate extraction.

For a pair of plunger gates the virtualization matrix is (paper §2.3)

    [V'_x]   [ 1    a12 ] [V_x]
    [V'_y] = [ a21  1   ] [V_y]

where ``a12`` compensates the cross-capacitive effect of the y-axis gate on
the x-axis gate's dot and ``a21`` the converse.  :class:`VirtualizationMatrix`
stores the pair coefficients, converts between slope and coefficient
representations, applies/undoes the affine transformation, and checks whether
a transformation actually orthogonalises a set of transition lines.

For an ``n``-dot array the per-pair matrices are chained into an ``n x n``
matrix by :class:`ArrayVirtualization` (paper §2.3: ``n - 1`` sequential
pairwise extractions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ExtractionError


@dataclass(frozen=True)
class VirtualizationMatrix:
    """Pairwise virtualization matrix for two plunger gates.

    Attributes
    ----------
    alpha_12:
        Compensation coefficient of the y-axis gate on the x-axis dot.
    alpha_21:
        Compensation coefficient of the x-axis gate on the y-axis dot.
    gate_x, gate_y:
        Names of the two physical gates (x-axis and y-axis of the CSD).
    """

    alpha_12: float
    alpha_21: float
    gate_x: str = "P1"
    gate_y: str = "P2"

    def __post_init__(self) -> None:
        if not (np.isfinite(self.alpha_12) and np.isfinite(self.alpha_21)):
            raise ExtractionError("virtualization coefficients must be finite")
        if abs(self.alpha_12 * self.alpha_21 - 1.0) < 1e-9:
            raise ExtractionError(
                "alpha_12 * alpha_21 == 1 makes the virtualization matrix singular"
            )

    # ------------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """The 2x2 matrix ``[[1, a12], [a21, 1]]``."""
        return np.array([[1.0, self.alpha_12], [self.alpha_21, 1.0]])

    @property
    def inverse(self) -> np.ndarray:
        """Inverse of :attr:`matrix` (virtual -> physical voltages)."""
        return np.linalg.inv(self.matrix)

    def to_virtual(self, physical: np.ndarray | list | tuple) -> np.ndarray:
        """Map physical voltages ``(Vx, Vy)`` to virtual voltages."""
        vec = np.asarray(physical, dtype=float)
        if vec.shape[-1] != 2:
            raise ExtractionError("expected voltage vectors with 2 components")
        return vec @ self.matrix.T

    def to_physical(self, virtual: np.ndarray | list | tuple) -> np.ndarray:
        """Map virtual voltages back to physical voltages."""
        vec = np.asarray(virtual, dtype=float)
        if vec.shape[-1] != 2:
            raise ExtractionError("expected voltage vectors with 2 components")
        return vec @ self.inverse.T

    # ------------------------------------------------------------------
    @property
    def slope_steep(self) -> float:
        """Slope of the steep (x-axis dot) transition line implied by the matrix."""
        if self.alpha_12 == 0:
            return float("-inf")
        return -1.0 / self.alpha_12

    @property
    def slope_shallow(self) -> float:
        """Slope of the shallow (y-axis dot) transition line implied by the matrix."""
        return -self.alpha_21

    @classmethod
    def from_slopes(
        cls,
        slope_steep: float,
        slope_shallow: float,
        gate_x: str = "P1",
        gate_y: str = "P2",
    ) -> "VirtualizationMatrix":
        """Build the matrix from measured transition-line slopes.

        ``slope_steep`` is ``dVy/dVx`` of the x-axis dot's addition line
        (nearly vertical, negative) and ``slope_shallow`` of the y-axis dot's
        addition line (nearly horizontal, negative); see DESIGN.md §2.
        """
        if not np.isfinite(slope_shallow):
            raise ExtractionError("shallow slope must be finite")
        if slope_steep == 0:
            raise ExtractionError("steep slope must be non-zero")
        alpha_12 = 0.0 if np.isinf(slope_steep) else -1.0 / slope_steep
        alpha_21 = -slope_shallow
        return cls(alpha_12=float(alpha_12), alpha_21=float(alpha_21), gate_x=gate_x, gate_y=gate_y)

    @classmethod
    def identity(cls, gate_x: str = "P1", gate_y: str = "P2") -> "VirtualizationMatrix":
        """The trivial (no compensation) matrix."""
        return cls(alpha_12=0.0, alpha_21=0.0, gate_x=gate_x, gate_y=gate_y)

    # ------------------------------------------------------------------
    def virtual_slopes(self, slope_steep: float, slope_shallow: float) -> tuple[float, float]:
        """Transition-line slopes after applying this virtualization.

        Perfect extraction maps the steep line to a vertical line (infinite
        slope) and the shallow line to a horizontal one (zero slope); the
        returned pair quantifies any residual tilt.
        """
        residuals = []
        for slope in (slope_steep, slope_shallow):
            direction = np.array([1.0, slope])
            transformed = self.matrix @ direction
            if abs(transformed[0]) < 1e-15:
                residuals.append(float("inf") if transformed[1] >= 0 else float("-inf"))
            else:
                residuals.append(float(transformed[1] / transformed[0]))
        return residuals[0], residuals[1]

    def orthogonality_error(self, slope_steep: float, slope_shallow: float) -> float:
        """Residual non-orthogonality after virtualization, in degrees.

        Computes the angles of the two transformed transition lines and
        returns the larger deviation from the ideal (vertical steep line,
        horizontal shallow line).  Zero means perfect one-to-one control.
        """
        steep_dir = self.matrix @ np.array([1.0, slope_steep])
        shallow_dir = self.matrix @ np.array([1.0, slope_shallow])
        steep_angle = np.degrees(np.arctan2(steep_dir[1], steep_dir[0])) % 180.0
        shallow_angle = np.degrees(np.arctan2(shallow_dir[1], shallow_dir[0])) % 180.0
        steep_error = abs(steep_angle - 90.0)
        shallow_error = min(shallow_angle, 180.0 - shallow_angle)
        return float(max(steep_error, shallow_error))

    def as_dict(self) -> dict:
        """Plain-dict view for reports and serialization."""
        return {
            "alpha_12": self.alpha_12,
            "alpha_21": self.alpha_21,
            "gate_x": self.gate_x,
            "gate_y": self.gate_y,
        }


class ArrayVirtualization:
    """Full ``n x n`` virtualization matrix built from pairwise extractions.

    The paper (§2.3) extends pairwise virtual gates to an ``n``-dot array by
    running the extraction on each pair of neighbouring plunger gates; this
    class accumulates those pairwise coefficients into a single matrix
    ``M`` such that ``V' = M V`` with ones on the diagonal.
    """

    def __init__(self, gate_names: tuple[str, ...] | list[str]) -> None:
        names = tuple(gate_names)
        if len(names) < 2:
            raise ExtractionError("ArrayVirtualization requires at least two gates")
        if len(set(names)) != len(names):
            raise ExtractionError("gate names must be unique")
        self._names = names
        self._matrix = np.eye(len(names))
        self._pairs: dict[tuple[str, str], VirtualizationMatrix] = {}

    @property
    def gate_names(self) -> tuple[str, ...]:
        """The gate order used for the matrix rows/columns."""
        return self._names

    @property
    def matrix(self) -> np.ndarray:
        """The accumulated ``n x n`` virtualization matrix (copy)."""
        return self._matrix.copy()

    @property
    def pairs(self) -> dict[tuple[str, str], VirtualizationMatrix]:
        """Pairwise matrices registered so far, keyed by (gate_x, gate_y)."""
        return dict(self._pairs)

    def gate_index(self, name: str) -> int:
        """Index of a gate name in the matrix ordering."""
        try:
            return self._names.index(name)
        except ValueError as exc:
            raise ExtractionError(
                f"unknown gate {name!r}; known gates: {self._names}"
            ) from exc

    def add_pair(self, pair: VirtualizationMatrix) -> None:
        """Register a pairwise extraction result.

        The off-diagonal coefficients are written into the array matrix:
        ``M[i, j] = alpha_12`` (compensation of gate ``j`` on dot ``i``) and
        ``M[j, i] = alpha_21`` for the pair ``(i, j) = (gate_x, gate_y)``.
        """
        i = self.gate_index(pair.gate_x)
        j = self.gate_index(pair.gate_y)
        if i == j:
            raise ExtractionError("pair must involve two different gates")
        self._matrix[i, j] = pair.alpha_12
        self._matrix[j, i] = pair.alpha_21
        self._pairs[(pair.gate_x, pair.gate_y)] = pair

    def is_complete_chain(self) -> bool:
        """Whether every neighbouring pair ``(k, k+1)`` has been registered."""
        for k in range(len(self._names) - 1):
            key = (self._names[k], self._names[k + 1])
            reverse = (self._names[k + 1], self._names[k])
            if key not in self._pairs and reverse not in self._pairs:
                return False
        return True

    def to_virtual(self, physical: np.ndarray | list) -> np.ndarray:
        """Map a physical gate-voltage vector to virtual voltages."""
        vec = np.asarray(physical, dtype=float)
        if vec.shape[-1] != len(self._names):
            raise ExtractionError(
                f"expected voltage vectors with {len(self._names)} components"
            )
        return vec @ self._matrix.T

    def to_physical(self, virtual: np.ndarray | list) -> np.ndarray:
        """Map virtual voltages back to physical gate voltages."""
        vec = np.asarray(virtual, dtype=float)
        if vec.shape[-1] != len(self._names):
            raise ExtractionError(
                f"expected voltage vectors with {len(self._names)} components"
            )
        return vec @ np.linalg.inv(self._matrix).T
