"""The fast virtual gate extraction pipeline (the paper's contribution).

:class:`FastVirtualGateExtractor` runs the four stages of Section 4
against a measurement session:

1. anchor-point preprocessing (:mod:`repro.core.anchors`, §4.4),
2. shrinking-triangle row- and column-major sweeps (:mod:`repro.core.sweeps`,
   §4.3.2),
3. erroneous-point filtering (:mod:`repro.core.postprocess`),
4. two-piece-wise linear fit and slope → virtualization-matrix conversion
   (:mod:`repro.core.fitting`, §4.3.3 and §2.3).

Since the pipeline refactor, the sequence itself lives in
:mod:`repro.pipeline` as the registered ``fast-extraction`` composition —
this class is the stable public front for it (and the seeded probe order
is bit-identical to the historical monolithic implementation).  Every
stage probes the device only through the session's cached meter, so the
result carries the exact experimental cost — now broken down per stage in
:attr:`~repro.core.result.ExtractionResult.stage_telemetry`.  Failures at
any stage are converted into an unsuccessful
:class:`~repro.core.result.ExtractionResult` rather than an exception,
because "extraction failed on this device" is an expected outcome the
evaluation has to count (two of the paper's twelve benchmarks fail).
"""

from __future__ import annotations

from ..exceptions import ExtractionError
from ..instrument.measurement import ChargeSensorMeter
from ..instrument.session import ExperimentSession
from .config import ExtractionConfig
from .result import ExtractionResult

#: Name used in result records and report tables.
METHOD_NAME = "fast-extraction"


def resolve_meter(target: ExperimentSession | ChargeSensorMeter) -> ChargeSensorMeter:
    """The measurement meter behind a session (or the meter itself)."""
    if isinstance(target, ExperimentSession):
        return target.meter
    if isinstance(target, ChargeSensorMeter):
        return target
    raise ExtractionError(
        f"expected an ExperimentSession or ChargeSensorMeter, got {type(target).__name__}"
    )


def gate_names_for(
    target: ExperimentSession | ChargeSensorMeter,
) -> tuple[str, str]:
    """The ``(gate_x, gate_y)`` names of the measurement target's axes.

    Raises :class:`ExtractionError` when the backend exposes neither a CSD
    nor gate-name attributes: silently defaulting to ``("P1", "P2")`` (the
    historical behaviour) mislabeled results from custom backends, which
    is strictly worse than failing loudly.
    """
    meter = resolve_meter(target)
    backend = meter.backend
    csd = getattr(backend, "csd", None)
    if csd is not None:
        return csd.gate_x, csd.gate_y
    gate_x = getattr(backend, "gate_x_name", None)
    gate_y = getattr(backend, "gate_y_name", None)
    if gate_x is not None and gate_y is not None:
        return str(gate_x), str(gate_y)
    raise ExtractionError(
        f"measurement backend {type(backend).__name__} exposes neither a "
        "`csd` nor `gate_x_name`/`gate_y_name` attributes, so the extracted "
        "matrix cannot be labeled with its gate names; add those attributes "
        "to the backend (or wrap it in a DatasetBackend/DeviceBackend)"
    )


class FastVirtualGateExtractor:
    """Probe-efficient virtual gate extraction for one plunger-gate pair."""

    def __init__(self, config: ExtractionConfig | None = None) -> None:
        self._config = config or ExtractionConfig.paper_defaults()

    @property
    def config(self) -> ExtractionConfig:
        """The pipeline configuration."""
        return self._config

    # ------------------------------------------------------------------
    def extract(
        self, target: ExperimentSession | ChargeSensorMeter
    ) -> ExtractionResult:
        """Run the full pipeline against a session (or bare meter)."""
        # Imported lazily: repro.pipeline composes this package's stages,
        # so a module-level import would be circular.
        from ..pipeline.registry import get_pipeline

        return get_pipeline(METHOD_NAME).run(target, config=self._config)
