"""The fast virtual gate extraction pipeline (the paper's contribution).

:class:`FastVirtualGateExtractor` strings together the four stages of
Section 4 against a measurement session:

1. anchor-point preprocessing (:mod:`repro.core.anchors`, §4.4),
2. shrinking-triangle row- and column-major sweeps (:mod:`repro.core.sweeps`,
   §4.3.2),
3. erroneous-point filtering (:mod:`repro.core.postprocess`),
4. two-piece-wise linear fit and slope → virtualization-matrix conversion
   (:mod:`repro.core.fitting`, §4.3.3 and §2.3).

Every stage probes the device only through the session's cached meter, so the
result carries the exact experimental cost (probe count, simulated runtime)
alongside the extracted matrix.  Failures at any stage are converted into an
unsuccessful :class:`~repro.core.result.ExtractionResult` rather than an
exception, because "extraction failed on this device" is an expected outcome
the evaluation has to count (two of the paper's twelve benchmarks fail).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ExtractionError
from ..instrument.measurement import ChargeSensorMeter
from ..instrument.session import ExperimentSession
from .anchors import AnchorFinder
from .config import ExtractionConfig
from .fitting import TransitionLineFitter
from .postprocess import build_point_set
from .result import (
    AnchorSearchResult,
    ExtractionResult,
    ProbeStatistics,
    SlopeFitResult,
    TransitionPointSet,
)
from .sweeps import TransitionLineSweeper
from .virtualization import VirtualizationMatrix

#: Name used in result records and report tables.
METHOD_NAME = "fast-extraction"


def _resolve_meter(target: ExperimentSession | ChargeSensorMeter) -> ChargeSensorMeter:
    if isinstance(target, ExperimentSession):
        return target.meter
    if isinstance(target, ChargeSensorMeter):
        return target
    raise ExtractionError(
        f"expected an ExperimentSession or ChargeSensorMeter, got {type(target).__name__}"
    )


def _gate_names(target: ExperimentSession | ChargeSensorMeter) -> tuple[str, str]:
    meter = _resolve_meter(target)
    backend = meter.backend
    csd = getattr(backend, "csd", None)
    if csd is not None:
        return csd.gate_x, csd.gate_y
    gate_x = getattr(backend, "gate_x_name", None)
    gate_y = getattr(backend, "gate_y_name", None)
    if gate_x is not None and gate_y is not None:
        return str(gate_x), str(gate_y)
    return "P1", "P2"


class FastVirtualGateExtractor:
    """Probe-efficient virtual gate extraction for one plunger-gate pair."""

    def __init__(self, config: ExtractionConfig | None = None) -> None:
        self._config = config or ExtractionConfig.paper_defaults()

    @property
    def config(self) -> ExtractionConfig:
        """The pipeline configuration."""
        return self._config

    # ------------------------------------------------------------------
    def extract(
        self, target: ExperimentSession | ChargeSensorMeter
    ) -> ExtractionResult:
        """Run the full pipeline against a session (or bare meter)."""
        meter = _resolve_meter(target)
        gate_x, gate_y = _gate_names(target)
        anchors: AnchorSearchResult | None = None
        points: TransitionPointSet | None = None
        fit: SlopeFitResult | None = None
        try:
            anchors = AnchorFinder(meter, self._config.anchors).find()
            sweeper = TransitionLineSweeper(meter, self._config.sweeps)
            row_trace, column_trace = sweeper.run(
                anchors.steep_anchor, anchors.shallow_anchor
            )
            points = build_point_set(
                row_trace,
                column_trace,
                apply_filter=self._config.sweeps.apply_postprocess,
            )
            fit = self._fit(meter, anchors, points)
            matrix, slopes = self._matrix_from_fit(fit, gate_x, gate_y)
        except ExtractionError as exc:
            return ExtractionResult(
                success=False,
                method=METHOD_NAME,
                matrix=None,
                slopes=None,
                probe_stats=self._probe_stats(meter),
                anchors=anchors,
                points=points,
                fit=fit,
                failure_reason=str(exc),
            )
        failure = self._validate(fit, matrix)
        # A validation failure deliberately keeps the rejected matrix: callers
        # diagnosing a failed run need to see *what* was extracted alongside
        # the failure_reason explaining why it was rejected.
        return ExtractionResult(
            success=failure is None,
            method=METHOD_NAME,
            matrix=matrix,
            slopes=slopes,
            probe_stats=self._probe_stats(meter),
            anchors=anchors,
            points=points,
            fit=fit,
            failure_reason=failure or "",
        )

    # ------------------------------------------------------------------
    def _fit(
        self,
        meter: ChargeSensorMeter,
        anchors: AnchorSearchResult,
        points: TransitionPointSet,
    ) -> SlopeFitResult:
        xs = meter.x_voltages
        ys = meter.y_voltages
        filtered = points.filtered_points
        voltage_points = np.array(
            [[xs[col], ys[row]] for row, col in filtered], dtype=float
        )
        steep_anchor_v = (
            float(xs[anchors.steep_anchor.col]),
            float(ys[anchors.steep_anchor.row]),
        )
        shallow_anchor_v = (
            float(xs[anchors.shallow_anchor.col]),
            float(ys[anchors.shallow_anchor.row]),
        )
        fitter = TransitionLineFitter(self._config.fit)
        return fitter.fit(voltage_points, steep_anchor_v, shallow_anchor_v)

    def _matrix_from_fit(
        self, fit: SlopeFitResult, gate_x: str, gate_y: str
    ) -> tuple[VirtualizationMatrix, tuple[float, float]]:
        slopes = (fit.slope_steep, fit.slope_shallow)
        matrix = VirtualizationMatrix.from_slopes(
            slope_steep=fit.slope_steep,
            slope_shallow=fit.slope_shallow,
            gate_x=gate_x,
            gate_y=gate_y,
        )
        return matrix, slopes

    def _validate(
        self, fit: SlopeFitResult | None, matrix: VirtualizationMatrix | None
    ) -> str | None:
        if fit is None or matrix is None:
            return "pipeline did not produce a fit"
        cfg = self._config.fit
        if not fit.converged:
            return "slope fit did not converge"
        if not (np.isfinite(fit.slope_steep) and np.isfinite(fit.slope_shallow)):
            return "fitted slopes are not finite"
        if fit.slope_steep >= 0 or fit.slope_shallow >= 0:
            return (
                "fitted slopes must both be negative (device physics); got "
                f"steep={fit.slope_steep:.3f}, shallow={fit.slope_shallow:.3f}"
            )
        if abs(fit.slope_steep) < cfg.min_steep_slope_magnitude:
            return (
                f"steep slope magnitude {abs(fit.slope_steep):.3f} below the physical "
                f"minimum {cfg.min_steep_slope_magnitude}"
            )
        if abs(fit.slope_shallow) > cfg.max_shallow_slope_magnitude:
            return (
                f"shallow slope magnitude {abs(fit.slope_shallow):.3f} above the physical "
                f"maximum {cfg.max_shallow_slope_magnitude}"
            )
        if not (0.0 <= matrix.alpha_12 <= cfg.max_alpha):
            return f"alpha_12 = {matrix.alpha_12:.3f} outside [0, {cfg.max_alpha}]"
        if not (0.0 <= matrix.alpha_21 <= cfg.max_alpha):
            return f"alpha_21 = {matrix.alpha_21:.3f} outside [0, {cfg.max_alpha}]"
        return None

    @staticmethod
    def _probe_stats(meter: ChargeSensorMeter) -> ProbeStatistics:
        return ProbeStatistics(
            n_probes=meter.n_probes,
            n_requests=meter.n_requests,
            n_pixels=meter.backend.n_pixels,
            elapsed_s=meter.elapsed_s,
        )
