"""Row-major and column-major sweeps inside the shrinking triangle (§4.3.2).

Starting from the two anchor points, the sweeps walk the triangular region one
row (respectively one column) at a time, probe only the pixels of that row
(column) that are still inside the region, keep the pixel with the largest
feature gradient as a transition point, and move the corresponding anchor to
it — shrinking the triangle so the next row's segment stays hugging the
transition line.

* The **row-major sweep** starts at the steep-line anchor and climbs towards
  the shallow-line anchor's row.  It is accurate on the steep (nearly
  vertical) line, which crosses each row at a well-defined column, and
  error-prone once it reaches the rows of the shallow line where segments get
  long (the paper's observation).
* The **column-major sweep** is the transpose: it starts at the shallow-line
  anchor and marches right towards the steep-line anchor's column, accurately
  tracking the shallow (nearly horizontal) line.

Both sweeps probe through the same cached meter, so pixels shared between the
anchor search, the two sweeps and the gradient finite differences are paid
for only once.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import SweepError
from ..instrument.measurement import ChargeSensorMeter
from .config import SweepConfig
from .gradient import FeatureGradient
from .region import PixelPoint, TriangularRegion
from .result import SweepTrace


class TransitionLineSweeper:
    """Run the two shrinking-triangle sweeps of the paper's Algorithm 3."""

    def __init__(
        self,
        meter: ChargeSensorMeter,
        config: SweepConfig | None = None,
    ) -> None:
        self._meter = meter
        self._config = config or SweepConfig()
        self._gradient = FeatureGradient(meter, delta_pixels=self._config.delta_pixels)

    @property
    def config(self) -> SweepConfig:
        """The sweep configuration."""
        return self._config

    @property
    def gradient(self) -> FeatureGradient:
        """The feature-gradient evaluator used by both sweeps."""
        return self._gradient

    # ------------------------------------------------------------------
    def row_major_sweep(
        self, steep_anchor: PixelPoint, shallow_anchor: PixelPoint
    ) -> SweepTrace:
        """Sweep rows bottom-to-top, tracking the steep transition line.

        The shallow-line anchor stays fixed; the steep-line anchor is moved to
        the best point of every row, shrinking the triangle as the sweep
        climbs.
        """
        region = TriangularRegion(steep_anchor=steep_anchor, shallow_anchor=shallow_anchor)
        transition_points: list[tuple[int, int]] = []
        segment_lengths: list[int] = []
        for row in range(steep_anchor.row + 1, shallow_anchor.row):
            segment = region.row_segment(row)
            segment_lengths.append(len(segment))
            if not segment:
                continue
            columns = np.asarray(segment, dtype=int)
            # One batched gradient evaluation serves the whole segment.
            gradients = self._gradient.values(np.full(columns.size, row), columns)
            best_col = int(columns[int(np.argmax(gradients))])
            transition_points.append((row, best_col))
            region = region.with_steep_anchor(PixelPoint(row=row, col=best_col))
        return SweepTrace(
            direction="row-major",
            transition_points=tuple(transition_points),
            segment_lengths=tuple(segment_lengths),
        )

    def column_major_sweep(
        self, steep_anchor: PixelPoint, shallow_anchor: PixelPoint
    ) -> SweepTrace:
        """Sweep columns left-to-right, tracking the shallow transition line.

        The steep-line anchor stays fixed; the shallow-line anchor is moved to
        the best point of every column.
        """
        region = TriangularRegion(steep_anchor=steep_anchor, shallow_anchor=shallow_anchor)
        transition_points: list[tuple[int, int]] = []
        segment_lengths: list[int] = []
        for col in range(shallow_anchor.col + 1, steep_anchor.col):
            segment = region.column_segment(col)
            segment_lengths.append(len(segment))
            if not segment:
                continue
            rows = np.asarray(segment, dtype=int)
            # One batched gradient evaluation serves the whole segment.
            gradients = self._gradient.values(rows, np.full(rows.size, col))
            best_row = int(rows[int(np.argmax(gradients))])
            transition_points.append((best_row, col))
            region = region.with_shallow_anchor(PixelPoint(row=best_row, col=col))
        return SweepTrace(
            direction="column-major",
            transition_points=tuple(transition_points),
            segment_lengths=tuple(segment_lengths),
        )

    # ------------------------------------------------------------------
    def run(
        self, steep_anchor: PixelPoint, shallow_anchor: PixelPoint
    ) -> tuple[SweepTrace, SweepTrace]:
        """Run the enabled sweeps and return ``(row_trace, column_trace)``.

        A disabled sweep (ablation studies) yields an empty trace.  Raises
        :class:`SweepError` when both enabled sweeps come back empty, since
        the fit cannot proceed without transition points.
        """
        empty_row = SweepTrace(direction="row-major", transition_points=(), segment_lengths=())
        empty_col = SweepTrace(
            direction="column-major", transition_points=(), segment_lengths=()
        )
        row_trace = (
            self.row_major_sweep(steep_anchor, shallow_anchor)
            if self._config.run_row_sweep
            else empty_row
        )
        column_trace = (
            self.column_major_sweep(steep_anchor, shallow_anchor)
            if self._config.run_column_sweep
            else empty_col
        )
        if row_trace.n_points == 0 and column_trace.n_points == 0:
            raise SweepError(
                "both sweeps returned no transition points; the anchor points "
                "probably do not bracket the transition lines"
            )
        return row_trace, column_trace
