"""Virtual gate extraction for n-dot arrays via pairwise runs.

The paper (§2.3) notes that virtual gates for an ``n``-dot array are obtained
by applying the pairwise extraction to every pair of neighbouring plunger
gates — ``n - 1`` extractions.  :class:`ArrayVirtualGateExtractor` automates
exactly that against a simulated :class:`~repro.physics.dot_array.DotArrayDevice`:
for each neighbouring pair it opens a measurement session over a window
centred on that pair's first charge transitions (with all other plungers held
at fixed voltages), runs the fast extractor, and accumulates the pairwise
coefficients into a full :class:`~repro.core.virtualization.ArrayVirtualization`.

The pairwise sessions are mutually independent — each opens its own meter
over its own window with its own spawned child seed — so they can run
concurrently.  Passing ``n_workers > 1`` dispatches them over a process pool;
the default stays strictly sequential, and both modes produce bit-identical
results because the per-pair seeds are assigned by pair index before any
session runs.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ExtractionError
from ..instrument.session import SessionFactory
from ..instrument.timing import TimingModel
from ..physics.dot_array import DotArrayDevice
from ..physics.noise import NoiseModel
from ..seeding import spawn_seeds
from .config import ExtractionConfig
from .extraction import FastVirtualGateExtractor
from .result import ExtractionResult
from .virtualization import ArrayVirtualization


@dataclass(frozen=True)
class PairExtractionRecord:
    """Result of one neighbouring-pair extraction within an array run."""

    dot_a: int
    dot_b: int
    gate_x: str
    gate_y: str
    result: ExtractionResult
    true_alpha_12: float
    true_alpha_21: float


@dataclass(frozen=True)
class ArrayExtractionResult:
    """Outcome of a full n-dot array extraction."""

    virtualization: ArrayVirtualization
    pair_records: tuple[PairExtractionRecord, ...]
    total_probes: int
    total_elapsed_s: float
    metadata: dict = field(default_factory=dict)

    @property
    def n_pairs(self) -> int:
        """Number of neighbouring pairs processed."""
        return len(self.pair_records)

    @property
    def all_pairs_succeeded(self) -> bool:
        """Whether every pairwise extraction succeeded."""
        return all(record.result.success for record in self.pair_records)

    def max_alpha_error(self) -> float:
        """Largest absolute error of any extracted coefficient vs ground truth."""
        errors = []
        for record in self.pair_records:
            if record.result.matrix is None:
                errors.append(float("inf"))
                continue
            errors.append(abs(record.result.matrix.alpha_12 - record.true_alpha_12))
            errors.append(abs(record.result.matrix.alpha_21 - record.true_alpha_21))
        return float(max(errors)) if errors else 0.0


@dataclass(frozen=True)
class _PairJob:
    """Everything one pairwise extraction needs, picklable for worker pools."""

    pair_index: int
    dot_a: int
    dot_b: int
    gate_x: str
    gate_y: str
    seed: np.random.SeedSequence | None


def _run_pair_job(
    factory: SessionFactory, config: ExtractionConfig, job: _PairJob
) -> ExtractionResult:
    """Run one pairwise extraction (module-level so process pools can pickle it)."""
    session = factory.make(
        gate_x=job.gate_x,
        gate_y=job.gate_y,
        dot_a=job.dot_a,
        dot_b=job.dot_b,
        seed=job.seed,
        label=f"{factory.device.name}:{job.gate_x}-{job.gate_y}",
    )
    return FastVirtualGateExtractor(config).extract(session)


class ArrayVirtualGateExtractor:
    """Run the fast pairwise extraction on every neighbouring plunger pair.

    Parameters
    ----------
    n_workers:
        Number of worker processes for the pairwise sessions.  ``1`` (the
        default) runs them sequentially in-process, exactly as the paper
        describes the procedure; larger values fan the independent sessions
        out over a :class:`~concurrent.futures.ProcessPoolExecutor`.  Results
        are identical in both modes for a given ``seed``.
    """

    def __init__(
        self,
        config: ExtractionConfig | None = None,
        resolution: int = 100,
        noise: NoiseModel | None = None,
        timing: TimingModel | None = None,
        seed: int | np.random.SeedSequence | None = None,
        n_workers: int = 1,
    ) -> None:
        if resolution < 16:
            raise ExtractionError("array extraction needs a resolution of at least 16")
        if n_workers < 1:
            raise ExtractionError("n_workers must be at least 1")
        self._config = config or ExtractionConfig.paper_defaults()
        self._resolution = int(resolution)
        self._noise = noise
        self._timing = timing or TimingModel.paper_default()
        self._seed = seed
        self._n_workers = int(n_workers)

    # ------------------------------------------------------------------
    def extract(self, device: DotArrayDevice) -> ArrayExtractionResult:
        """Extract the full virtualization matrix of an n-dot device."""
        if device.n_dots < 2:
            raise ExtractionError("array extraction requires at least two dots")
        if device.n_gates < device.n_dots:
            raise ExtractionError("array extraction expects one plunger gate per dot")
        gate_names = device.gate_names[: device.n_dots]
        pairs = device.neighbour_pairs()
        n_pairs = len(pairs)
        # Child seeds are spawned (not derived arithmetically) so every
        # pair's noise stream is independent of its neighbours and of runs
        # rooted at adjacent seeds, and they are assigned by pair index up
        # front so parallel execution cannot reorder them.
        seeds = spawn_seeds(self._seed, n_pairs)
        jobs = [
            _PairJob(
                pair_index=pair_index,
                dot_a=dot_a,
                dot_b=dot_b,
                gate_x=gate_x,
                gate_y=gate_y,
                seed=seeds[pair_index],
            )
            for pair_index, (dot_a, dot_b, gate_x, gate_y) in enumerate(pairs)
        ]
        factory = SessionFactory(
            device=device,
            resolution=self._resolution,
            noise=self._noise,
            timing=self._timing,
        )
        if self._n_workers == 1 or n_pairs == 1:
            results = [_run_pair_job(factory, self._config, job) for job in jobs]
        else:
            max_workers = min(self._n_workers, n_pairs)
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                results = list(
                    pool.map(
                        _run_pair_job,
                        [factory] * n_pairs,
                        [self._config] * n_pairs,
                        jobs,
                    )
                )

        virtualization = ArrayVirtualization(gate_names)
        records: list[PairExtractionRecord] = []
        total_probes = 0
        total_elapsed = 0.0
        for job, result in zip(jobs, results):
            true_alpha_12, true_alpha_21 = device.ground_truth_alphas(
                job.dot_a, job.dot_b, job.gate_x, job.gate_y
            )
            if result.success and result.matrix is not None:
                virtualization.add_pair(result.matrix)
            records.append(
                PairExtractionRecord(
                    dot_a=job.dot_a,
                    dot_b=job.dot_b,
                    gate_x=job.gate_x,
                    gate_y=job.gate_y,
                    result=result,
                    true_alpha_12=true_alpha_12,
                    true_alpha_21=true_alpha_21,
                )
            )
            total_probes += result.probe_stats.n_probes
            total_elapsed += result.probe_stats.elapsed_s
        return ArrayExtractionResult(
            virtualization=virtualization,
            pair_records=tuple(records),
            total_probes=total_probes,
            total_elapsed_s=total_elapsed,
            metadata={
                "device": device.name,
                "resolution": self._resolution,
                "n_dots": device.n_dots,
                "n_workers": self._n_workers,
            },
        )
