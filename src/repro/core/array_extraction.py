"""Virtual gate extraction for n-dot arrays via sequential pairwise runs.

The paper (§2.3) notes that virtual gates for an ``n``-dot array are obtained
by applying the pairwise extraction to every pair of neighbouring plunger
gates — ``n - 1`` sequential extractions.  :class:`ArrayVirtualGateExtractor`
automates exactly that against a simulated :class:`~repro.physics.dot_array.DotArrayDevice`:
for each neighbouring pair it opens a measurement session over a window
centred on that pair's first charge transitions (with all other plungers held
at fixed voltages), runs the fast extractor, and accumulates the pairwise
coefficients into a full :class:`~repro.core.virtualization.ArrayVirtualization`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ExtractionError
from ..instrument.session import ExperimentSession
from ..instrument.timing import TimingModel
from ..physics.dot_array import DotArrayDevice
from ..physics.noise import NoiseModel
from .config import ExtractionConfig
from .extraction import FastVirtualGateExtractor
from .result import ExtractionResult
from .virtualization import ArrayVirtualization


@dataclass(frozen=True)
class PairExtractionRecord:
    """Result of one neighbouring-pair extraction within an array run."""

    dot_a: int
    dot_b: int
    gate_x: str
    gate_y: str
    result: ExtractionResult
    true_alpha_12: float
    true_alpha_21: float


@dataclass(frozen=True)
class ArrayExtractionResult:
    """Outcome of a full n-dot array extraction."""

    virtualization: ArrayVirtualization
    pair_records: tuple[PairExtractionRecord, ...]
    total_probes: int
    total_elapsed_s: float
    metadata: dict = field(default_factory=dict)

    @property
    def n_pairs(self) -> int:
        """Number of neighbouring pairs processed."""
        return len(self.pair_records)

    @property
    def all_pairs_succeeded(self) -> bool:
        """Whether every pairwise extraction succeeded."""
        return all(record.result.success for record in self.pair_records)

    def max_alpha_error(self) -> float:
        """Largest absolute error of any extracted coefficient vs ground truth."""
        errors = []
        for record in self.pair_records:
            if record.result.matrix is None:
                errors.append(float("inf"))
                continue
            errors.append(abs(record.result.matrix.alpha_12 - record.true_alpha_12))
            errors.append(abs(record.result.matrix.alpha_21 - record.true_alpha_21))
        return float(max(errors)) if errors else 0.0


class ArrayVirtualGateExtractor:
    """Run the fast pairwise extraction on every neighbouring plunger pair."""

    def __init__(
        self,
        config: ExtractionConfig | None = None,
        resolution: int = 100,
        noise: NoiseModel | None = None,
        timing: TimingModel | None = None,
        seed: int | None = None,
    ) -> None:
        if resolution < 16:
            raise ExtractionError("array extraction needs a resolution of at least 16")
        self._config = config or ExtractionConfig.paper_defaults()
        self._resolution = int(resolution)
        self._noise = noise
        self._timing = timing or TimingModel.paper_default()
        self._seed = seed

    # ------------------------------------------------------------------
    def extract(self, device: DotArrayDevice) -> ArrayExtractionResult:
        """Extract the full virtualization matrix of an n-dot device."""
        if device.n_dots < 2:
            raise ExtractionError("array extraction requires at least two dots")
        if device.n_gates < device.n_dots:
            raise ExtractionError("array extraction expects one plunger gate per dot")
        gate_names = device.gate_names[: device.n_dots]
        virtualization = ArrayVirtualization(gate_names)
        extractor = FastVirtualGateExtractor(self._config)
        records: list[PairExtractionRecord] = []
        total_probes = 0
        total_elapsed = 0.0
        for pair_index in range(device.n_dots - 1):
            dot_a, dot_b = pair_index, pair_index + 1
            gate_x = gate_names[dot_a]
            gate_y = gate_names[dot_b]
            seed = None if self._seed is None else self._seed + pair_index
            session = ExperimentSession.from_device(
                device,
                resolution=self._resolution,
                gate_x=gate_x,
                gate_y=gate_y,
                dot_a=dot_a,
                dot_b=dot_b,
                noise=self._noise,
                seed=seed,
                timing=self._timing,
                label=f"{device.name}:{gate_x}-{gate_y}",
            )
            result = extractor.extract(session)
            true_alpha_12, true_alpha_21 = device.ground_truth_alphas(
                dot_a, dot_b, gate_x, gate_y
            )
            if result.success and result.matrix is not None:
                virtualization.add_pair(result.matrix)
            records.append(
                PairExtractionRecord(
                    dot_a=dot_a,
                    dot_b=dot_b,
                    gate_x=gate_x,
                    gate_y=gate_y,
                    result=result,
                    true_alpha_12=true_alpha_12,
                    true_alpha_21=true_alpha_21,
                )
            )
            total_probes += result.probe_stats.n_probes
            total_elapsed += result.probe_stats.elapsed_s
        return ArrayExtractionResult(
            virtualization=virtualization,
            pair_records=tuple(records),
            total_probes=total_probes,
            total_elapsed_s=total_elapsed,
            metadata={
                "device": device.name,
                "resolution": self._resolution,
                "n_dots": device.n_dots,
            },
        )
