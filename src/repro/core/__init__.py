"""The paper's contribution: fast, probe-efficient virtual gate extraction.

Public surface:

* :class:`FastVirtualGateExtractor` — the full pipeline of Section 4
  (anchor preprocessing, shrinking-triangle sweeps, erroneous-point filtering,
  two-piece-wise linear fit).
* :class:`VirtualizationMatrix` / :class:`ArrayVirtualization` — the output
  objects, including the affine transformation to virtual gate space.
* :class:`ArrayVirtualGateExtractor` — the n-dot extension via sequential
  pairwise extraction.
* :class:`ExtractionConfig` — every tunable with its paper default.
"""

from .anchors import AnchorFinder
from .array_extraction import (
    ArrayExtractionResult,
    ArrayVirtualGateExtractor,
    PairExtractionRecord,
)
from .config import (
    PAPER_MASK_X,
    PAPER_MASK_Y,
    AnchorConfig,
    ExtractionConfig,
    FitConfig,
    SweepConfig,
)
from .extraction import (
    METHOD_NAME,
    FastVirtualGateExtractor,
    gate_names_for,
    resolve_meter,
)
from .fitting import TransitionLineFitter, piecewise_transition_model
from .gradient import FeatureGradient, MaskResponse, gaussian_window, oriented_mask
from .postprocess import (
    build_point_set,
    filter_transition_points,
    leftmost_point_per_row,
    lowest_point_per_column,
)
from .region import PixelPoint, TriangularRegion
from .result import (
    AnchorSearchResult,
    ExtractionResult,
    ProbeStatistics,
    SlopeFitResult,
    StageTelemetry,
    SweepTrace,
    TransitionPointSet,
)
from .sweeps import TransitionLineSweeper
from .virtualization import ArrayVirtualization, VirtualizationMatrix
from .window_search import (
    TransitionWindowFinder,
    WindowSearchConfig,
    WindowSearchResult,
    tilted_gradient_image,
)
from .workflow import (
    AutoTuneResult,
    AutoTuningWorkflow,
    DriftAwareTuneResult,
    RetuneCycle,
    StalenessCheck,
)

__all__ = [
    "AnchorFinder",
    "ArrayExtractionResult",
    "ArrayVirtualGateExtractor",
    "PairExtractionRecord",
    "AnchorConfig",
    "ExtractionConfig",
    "FitConfig",
    "SweepConfig",
    "PAPER_MASK_X",
    "PAPER_MASK_Y",
    "FastVirtualGateExtractor",
    "METHOD_NAME",
    "gate_names_for",
    "resolve_meter",
    "TransitionLineFitter",
    "piecewise_transition_model",
    "FeatureGradient",
    "MaskResponse",
    "gaussian_window",
    "oriented_mask",
    "build_point_set",
    "filter_transition_points",
    "leftmost_point_per_row",
    "lowest_point_per_column",
    "PixelPoint",
    "TriangularRegion",
    "AnchorSearchResult",
    "ExtractionResult",
    "ProbeStatistics",
    "SlopeFitResult",
    "StageTelemetry",
    "SweepTrace",
    "TransitionPointSet",
    "ArrayVirtualization",
    "VirtualizationMatrix",
    "TransitionWindowFinder",
    "WindowSearchConfig",
    "WindowSearchResult",
    "tilted_gradient_image",
    "AutoTuneResult",
    "AutoTuningWorkflow",
    "DriftAwareTuneResult",
    "RetuneCycle",
    "StalenessCheck",
]
