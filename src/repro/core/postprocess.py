"""Erroneous-point filtering after the sweeps (paper §4.3.2, Algorithm 3).

The row-major sweep is unreliable where the transition line runs nearly
parallel to the rows (the shallow-line region) and the column-major sweep is
unreliable in the steep-line region, because there the in-region segments are
long and a single noisy pixel can win the per-segment argmax.  The paper
removes those mistakes with two order-statistics filters and joins the
results:

* keep, for every column, only the lowest point (smallest row) — reliable
  row-sweep points on the steep line survive, spurious column-sweep points
  above them are dropped;
* keep, for every row, only the leftmost point (smallest column) — reliable
  column-sweep points on the shallow line survive, spurious row-sweep points
  to their right are dropped;
* return the union of the two filtered sets.
"""

from __future__ import annotations

from .result import SweepTrace, TransitionPointSet


def lowest_point_per_column(points: list[tuple[int, int]] | tuple) -> set[tuple[int, int]]:
    """For every column keep only the point with the smallest row."""
    best: dict[int, tuple[int, int]] = {}
    for row, col in points:
        current = best.get(col)
        if current is None or row < current[0]:
            best[col] = (row, col)
    return set(best.values())


def leftmost_point_per_row(points: list[tuple[int, int]] | tuple) -> set[tuple[int, int]]:
    """For every row keep only the point with the smallest column."""
    best: dict[int, tuple[int, int]] = {}
    for row, col in points:
        current = best.get(row)
        if current is None or col < current[1]:
            best[row] = (row, col)
    return set(best.values())


def filter_transition_points(
    points: list[tuple[int, int]] | tuple,
) -> tuple[tuple[int, int], ...]:
    """Apply both filters and join them (the paper's ``PostProcess``)."""
    filtered = lowest_point_per_column(points) | leftmost_point_per_row(points)
    return tuple(sorted(filtered))


def build_point_set(
    row_trace: SweepTrace,
    column_trace: SweepTrace,
    apply_filter: bool = True,
) -> TransitionPointSet:
    """Combine the two sweep traces into a (optionally filtered) point set."""
    raw = list(row_trace.transition_points) + list(column_trace.transition_points)
    filtered = filter_transition_points(raw) if apply_filter else tuple(sorted(set(raw)))
    return TransitionPointSet(
        row_sweep=row_trace,
        column_sweep=column_trace,
        filtered_points=filtered,
    )
