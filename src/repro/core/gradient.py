"""Gradient features used to detect charge-transition points.

Two features from the paper:

* the **feature gradient** (Algorithm 2): for a pixel ``(row, col)`` the sum
  of its current differences with the pixel to the right and the pixel to the
  upper-right.  A charge transition line has a negative slope, so crossing it
  rightwards or diagonally up-right adds an electron and (with the sensor
  parked on the falling flank of a Coulomb peak) drops the current — the
  feature is therefore large and positive exactly on the transition lines;
* the **anchor masks** (Section 4.4): 3x5 / 5x3 kernels that compute a
  positively sloped gradient across three pixels, a more noise-resilient
  indicator used only to find the two initial anchor points.

Both features measure *on demand* through a
:class:`~repro.instrument.measurement.ChargeSensorMeter`, so every pixel they
touch is charged dwell time and logged — exactly how the real experiment pays
for them.
"""

from __future__ import annotations

import numpy as np

from ..instrument.measurement import ChargeSensorMeter


class FeatureGradient:
    """The paper's Algorithm 2 evaluated through a measurement meter.

    Parameters
    ----------
    meter:
        Measurement meter used to obtain sensor currents.
    delta_pixels:
        Pixel granularity of the finite differences (the paper's ``delta``),
        in grid pixels.
    """

    def __init__(self, meter: ChargeSensorMeter, delta_pixels: int = 1) -> None:
        if delta_pixels < 1:
            raise ValueError("delta_pixels must be at least 1")
        self._meter = meter
        self._delta = int(delta_pixels)

    @property
    def meter(self) -> ChargeSensorMeter:
        """The measurement meter."""
        return self._meter

    @property
    def delta_pixels(self) -> int:
        """Finite-difference step in pixels."""
        return self._delta

    def _clamped(self, row: int, col: int) -> tuple[int, int]:
        rows, cols = self._meter.shape
        return min(max(row, 0), rows - 1), min(max(col, 0), cols - 1)

    def value(self, row: int, col: int) -> float:
        """Feature gradient at pixel ``(row, col)``.

        Probes the pixel itself, its right neighbour and its upper-right
        neighbour (clamped at the grid edges) and returns
        ``(c - c_right) + (c - c_upper_right)``.
        """
        row, col = self._clamped(row, col)
        center = self._meter.get_current(row, col)
        right_row, right_col = self._clamped(row, col + self._delta)
        upper_row, upper_col = self._clamped(row + self._delta, col + self._delta)
        right = self._meter.get_current(right_row, right_col)
        upper_right = self._meter.get_current(upper_row, upper_col)
        return (center - right) + (center - upper_right)

    def values(self, rows: np.ndarray | list, cols: np.ndarray | list) -> np.ndarray:
        """Feature gradients for a whole batch of pixels.

        Equivalent to calling :meth:`value` per pixel — the probes are issued
        in the same centre / right / upper-right order per pixel, through the
        meter's batched path, so cache hits and probe accounting are
        identical to the scalar loop while the measurement itself is served
        by one vectorised backend evaluation per batch.
        """
        rows = np.atleast_1d(np.asarray(rows, dtype=int))
        cols = np.atleast_1d(np.asarray(cols, dtype=int))
        grid_rows, grid_cols = self._meter.shape
        center_rows = np.clip(rows, 0, grid_rows - 1)
        center_cols = np.clip(cols, 0, grid_cols - 1)
        shifted_cols = np.clip(center_cols + self._delta, 0, grid_cols - 1)
        upper_rows = np.clip(center_rows + self._delta, 0, grid_rows - 1)
        probe_rows = np.column_stack([center_rows, center_rows, upper_rows]).ravel()
        probe_cols = np.column_stack([center_cols, shifted_cols, shifted_cols]).ravel()
        currents = self._meter.get_currents(probe_rows, probe_cols).reshape(-1, 3)
        center = currents[:, 0]
        right = currents[:, 1]
        upper_right = currents[:, 2]
        return (center - right) + (center - upper_right)


def oriented_mask(mask: np.ndarray | tuple) -> np.ndarray:
    """Convert a paper-printed mask (image row order) to bottom-up row order.

    The paper prints its masks with the first row at the top of the image;
    this library's grids have row 0 at the *bottom* (lowest ``V_P2``), so the
    kernels are flipped vertically before use.
    """
    return np.flipud(np.asarray(mask, dtype=float))


class MaskResponse:
    """Sweep an anchor mask along one axis, measuring pixels on demand."""

    def __init__(self, meter: ChargeSensorMeter, mask: np.ndarray | tuple) -> None:
        self._meter = meter
        self._mask = oriented_mask(mask)

    @property
    def mask(self) -> np.ndarray:
        """The oriented kernel."""
        return self._mask.copy()

    def _patch(self, row0: int, col0: int) -> np.ndarray:
        rows, cols = self._mask.shape
        grid_rows, grid_cols = self._meter.shape
        patch = np.zeros((rows, cols), dtype=float)
        for dr in range(rows):
            for dc in range(cols):
                row = min(max(row0 + dr, 0), grid_rows - 1)
                col = min(max(col0 + dc, 0), grid_cols - 1)
                patch[dr, dc] = self._meter.get_current(row, col)
        return patch

    def response(self, row0: int, col0: int) -> float:
        """Mask response with the kernel's lower-left corner at ``(row0, col0)``."""
        patch = self._patch(row0, col0)
        return float(np.sum(self._mask * patch))

    def sweep_along_columns(self, start_col: int, end_col: int, center_row: int) -> np.ndarray:
        """Responses for every kernel position from ``start_col`` to ``end_col``.

        The kernel is vertically centred on ``center_row``; the returned array
        has one entry per starting column (inclusive range).
        """
        half_rows = self._mask.shape[0] // 2
        row0 = center_row - half_rows
        columns = range(int(start_col), int(end_col) + 1)
        return np.array([self.response(row0, col) for col in columns], dtype=float)

    def sweep_along_rows(self, start_row: int, end_row: int, center_col: int) -> np.ndarray:
        """Responses for every kernel position from ``start_row`` to ``end_row``.

        The kernel is horizontally centred on ``center_col``.
        """
        half_cols = self._mask.shape[1] // 2
        col0 = center_col - half_cols
        rows = range(int(start_row), int(end_row) + 1)
        return np.array([self.response(row, col0) for row in rows], dtype=float)


def gaussian_window(length: int, center_fraction: float = 0.5, sigma_fraction: float = 0.25) -> np.ndarray:
    """1-D Gaussian weighting used on the anchor mask responses (paper §4.4).

    Parameters
    ----------
    length:
        Number of response samples to weight.
    center_fraction:
        Centre of the Gaussian as a fraction of the response range.
    sigma_fraction:
        Width of the Gaussian as a fraction of the response range.
    """
    if length < 1:
        raise ValueError("length must be at least 1")
    if length == 1:
        return np.ones(1)
    positions = np.linspace(0.0, 1.0, length)
    sigma = max(sigma_fraction, 1e-6)
    return np.exp(-0.5 * ((positions - center_fraction) / sigma) ** 2)
