"""Configuration of the fast virtual gate extraction algorithm.

Every tunable of the paper's method lives here with its paper default:

* §4.4 anchor preprocessing — number of diagonal probes, the 10% start
  margin, the ``Mask_x``/``Mask_y`` kernels, and the Gaussian weighting;
* §4.3 sweeps — pixel granularity ``delta`` of the feature gradient;
* §4.3.3 slope extraction — fit tolerances and sanity bounds on the
  resulting slopes.

The defaults reproduce the paper's behaviour; alternative values are used by
the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError

#: The paper's 3x5 mask swept along the x axis to find the steep-line anchor
#: (Section 4.4).  Rows are listed top-to-bottom in the paper's image
#: convention; the anchor finder flips them for this library's bottom-up row
#: convention.
PAPER_MASK_X: tuple[tuple[float, ...], ...] = (
    (1, 1, -3, -4, -4),
    (2, 2, 0, -2, -2),
    (4, 4, 3, -1, -1),
)

#: The paper's 5x3 mask swept along the y axis to find the shallow-line anchor.
PAPER_MASK_Y: tuple[tuple[float, ...], ...] = (
    (-1, -2, -4),
    (-1, -2, -4),
    (3, 0, -3),
    (4, 2, 1),
    (4, 2, 1),
)


@dataclass(frozen=True)
class AnchorConfig:
    """Parameters of the anchor-point preprocessing step (paper §4.4)."""

    n_diagonal_points: int = 10
    start_margin_fraction: float = 0.10
    mask_x: tuple[tuple[float, ...], ...] = PAPER_MASK_X
    mask_y: tuple[tuple[float, ...], ...] = PAPER_MASK_Y
    gaussian_center_fraction: float = 0.5
    gaussian_sigma_fraction: float = 0.25
    min_grid_extent: int = 12

    def __post_init__(self) -> None:
        if self.n_diagonal_points < 2:
            raise ConfigurationError("n_diagonal_points must be at least 2")
        if self.min_grid_extent < 8:
            raise ConfigurationError("min_grid_extent must be at least 8")
        if not 0 <= self.start_margin_fraction < 0.5:
            raise ConfigurationError("start_margin_fraction must lie in [0, 0.5)")
        if not 0 < self.gaussian_sigma_fraction <= 2.0:
            raise ConfigurationError("gaussian_sigma_fraction must lie in (0, 2]")
        if not 0 <= self.gaussian_center_fraction <= 1:
            raise ConfigurationError("gaussian_center_fraction must lie in [0, 1]")
        for name, mask in (("mask_x", self.mask_x), ("mask_y", self.mask_y)):
            arr = np.asarray(mask, dtype=float)
            if arr.ndim != 2 or arr.size == 0:
                raise ConfigurationError(f"{name} must be a non-empty 2-D kernel")

    def mask_x_array(self) -> np.ndarray:
        """``Mask_x`` as a float array."""
        return np.asarray(self.mask_x, dtype=float)

    def mask_y_array(self) -> np.ndarray:
        """``Mask_y`` as a float array."""
        return np.asarray(self.mask_y, dtype=float)


@dataclass(frozen=True)
class SweepConfig:
    """Parameters of the shrinking-triangle sweeps (paper §4.3)."""

    delta_pixels: int = 1
    run_row_sweep: bool = True
    run_column_sweep: bool = True
    apply_postprocess: bool = True

    def __post_init__(self) -> None:
        if self.delta_pixels < 1:
            raise ConfigurationError("delta_pixels must be at least 1")
        if not (self.run_row_sweep or self.run_column_sweep):
            raise ConfigurationError("at least one of the two sweeps must be enabled")


@dataclass(frozen=True)
class FitConfig:
    """Parameters of the two-piece-wise linear slope fit (paper §4.3.3)."""

    min_points: int = 4
    max_function_evaluations: int = 2000
    min_steep_slope_magnitude: float = 1.0
    max_shallow_slope_magnitude: float = 1.0
    max_alpha: float = 1.5

    def __post_init__(self) -> None:
        if self.min_points < 3:
            raise ConfigurationError("min_points must be at least 3")
        if self.max_function_evaluations < 10:
            raise ConfigurationError("max_function_evaluations must be at least 10")
        if self.min_steep_slope_magnitude <= 0:
            raise ConfigurationError("min_steep_slope_magnitude must be positive")
        if self.max_shallow_slope_magnitude <= 0:
            raise ConfigurationError("max_shallow_slope_magnitude must be positive")
        if self.max_alpha <= 0:
            raise ConfigurationError("max_alpha must be positive")


@dataclass(frozen=True)
class ExtractionConfig:
    """Full configuration of the fast virtual gate extraction pipeline."""

    anchors: AnchorConfig = field(default_factory=AnchorConfig)
    sweeps: SweepConfig = field(default_factory=SweepConfig)
    fit: FitConfig = field(default_factory=FitConfig)

    @classmethod
    def paper_defaults(cls) -> "ExtractionConfig":
        """The configuration used throughout the paper's evaluation."""
        return cls()

    def replace(self, **kwargs) -> "ExtractionConfig":
        """Return a copy with any of ``anchors``/``sweeps``/``fit`` replaced."""
        current = {"anchors": self.anchors, "sweeps": self.sweeps, "fit": self.fit}
        unknown = set(kwargs) - set(current)
        if unknown:
            raise ConfigurationError(f"unknown ExtractionConfig fields: {sorted(unknown)}")
        current.update(kwargs)
        return ExtractionConfig(**current)
