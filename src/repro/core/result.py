"""Result containers for the extraction pipeline stages.

These dataclasses carry everything the evaluation and the example scripts
need: what was found (anchors, transition points, slopes, the virtualization
matrix), what it cost (probe counts, simulated runtime), and enough
intermediate detail (per-sweep traces, filtered point sets) to reproduce the
paper's illustrative figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

import numpy as np

from .region import PixelPoint
from .virtualization import VirtualizationMatrix


@dataclass(frozen=True)
class StageTelemetry:
    """Cost and outcome of one pipeline stage, as measured by the meter.

    Probe/request/cache/simulated-time numbers are snapshot *deltas* over
    the stage (see :meth:`~repro.instrument.measurement.ChargeSensorMeter.snapshot`),
    so summing a run's stage telemetry reproduces the run's
    :class:`ProbeStatistics` totals exactly.  ``wall_s`` is real compute
    time — useful for profiling, but nondeterministic; comparisons of
    seeded runs go through :meth:`normalized`.
    """

    stage: str
    outcome: str  # "ok" | "failed" | "skipped"
    n_probes: int = 0
    n_requests: int = 0
    cache_hits: int = 0
    sim_elapsed_s: float = 0.0
    wall_s: float = 0.0
    detail: str = ""

    def as_dict(self) -> dict:
        """JSON-native plain-dict view (every field)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "StageTelemetry":
        """Rebuild from :meth:`as_dict` output (extra keys ignored)."""
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})

    def normalized(self, wall_s: float = 0.0) -> "StageTelemetry":
        """This telemetry with the wall clock pinned, for determinism checks."""
        return replace(self, wall_s=wall_s)


@dataclass(frozen=True)
class AnchorSearchResult:
    """Output of the anchor-point preprocessing (paper §4.4)."""

    steep_anchor: PixelPoint
    shallow_anchor: PixelPoint
    start_point: PixelPoint
    diagonal_pixels: tuple[tuple[int, int], ...]
    mask_x_responses: np.ndarray
    mask_y_responses: np.ndarray

    @property
    def anchors(self) -> tuple[PixelPoint, PixelPoint]:
        """``(steep_anchor, shallow_anchor)``."""
        return self.steep_anchor, self.shallow_anchor


@dataclass(frozen=True)
class SweepTrace:
    """Transition points located by one sweep (row-major or column-major)."""

    direction: str
    transition_points: tuple[tuple[int, int], ...]
    segment_lengths: tuple[int, ...]

    @property
    def n_points(self) -> int:
        """Number of transition points located."""
        return len(self.transition_points)

    @property
    def total_probed_segments(self) -> int:
        """Total number of candidate pixels examined across all segments."""
        return int(sum(self.segment_lengths))


@dataclass(frozen=True)
class TransitionPointSet:
    """Raw and filtered transition points from both sweeps."""

    row_sweep: SweepTrace
    column_sweep: SweepTrace
    filtered_points: tuple[tuple[int, int], ...]

    @property
    def raw_points(self) -> tuple[tuple[int, int], ...]:
        """All points located by the two sweeps, before filtering."""
        return self.row_sweep.transition_points + self.column_sweep.transition_points

    @property
    def n_filtered(self) -> int:
        """Number of points surviving the post-processing filter."""
        return len(self.filtered_points)


@dataclass(frozen=True)
class SlopeFitResult:
    """Output of the two-piece-wise linear fit (paper §4.3.3)."""

    intersection_voltage: tuple[float, float]
    slope_steep: float
    slope_shallow: float
    residual_rms: float
    n_points_used: int
    converged: bool


@dataclass(frozen=True)
class ProbeStatistics:
    """Cost of an extraction run in probes and simulated seconds."""

    n_probes: int
    n_requests: int
    n_pixels: int
    elapsed_s: float

    @property
    def probe_fraction(self) -> float:
        """Fraction of the CSD grid that was physically measured."""
        if self.n_pixels == 0:
            return 0.0
        return self.n_probes / float(self.n_pixels)

    def as_dict(self) -> dict:
        """Plain-dict view for report tables."""
        return {
            "n_probes": self.n_probes,
            "n_requests": self.n_requests,
            "n_pixels": self.n_pixels,
            "probe_fraction": self.probe_fraction,
            "elapsed_s": self.elapsed_s,
        }


@dataclass(frozen=True)
class ExtractionResult:
    """Complete outcome of one virtual gate extraction run."""

    success: bool
    method: str
    matrix: VirtualizationMatrix | None
    slopes: tuple[float, float] | None
    probe_stats: ProbeStatistics
    anchors: AnchorSearchResult | None = None
    points: TransitionPointSet | None = None
    fit: SlopeFitResult | None = None
    failure_reason: str = ""
    metadata: dict = field(default_factory=dict)
    stage_telemetry: tuple[StageTelemetry, ...] = ()

    @property
    def alpha_12(self) -> float | None:
        """Extracted ``alpha_12`` (None when extraction failed)."""
        return self.matrix.alpha_12 if self.matrix is not None else None

    @property
    def alpha_21(self) -> float | None:
        """Extracted ``alpha_21`` (None when extraction failed)."""
        return self.matrix.alpha_21 if self.matrix is not None else None

    def stage(self, name: str) -> StageTelemetry | None:
        """Telemetry of the named stage, or ``None`` when it never ran."""
        for telemetry in self.stage_telemetry:
            if telemetry.stage == name:
                return telemetry
        return None

    def summary(self) -> dict:
        """Flat summary used by the comparison harness and reports."""
        return {
            "method": self.method,
            "success": self.success,
            "alpha_12": self.alpha_12,
            "alpha_21": self.alpha_21,
            "slope_steep": self.slopes[0] if self.slopes else None,
            "slope_shallow": self.slopes[1] if self.slopes else None,
            "n_probes": self.probe_stats.n_probes,
            "probe_fraction": self.probe_stats.probe_fraction,
            "elapsed_s": self.probe_stats.elapsed_s,
            "failure_reason": self.failure_reason,
        }
