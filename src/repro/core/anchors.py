"""Anchor-point preprocessing (paper Section 4.4).

Before the sweeps can run, the algorithm needs one point on each transition
line far from their intersection — the "anchor points" that define the
initial triangular search region.  The paper finds them with three cheap
steps, all reproduced here:

1. probe ten equally spaced points along the lower-left → upper-right
   diagonal and take the brightest one (the (0,0) region is the brightest in
   a sensor-compensated scan);
2. choose the starting point as that bright point or the 10% width/height
   margin, whichever is further from the lower-left corner;
3. sweep the 3x5 ``Mask_x`` kernel rightwards along the starting row and the
   5x3 ``Mask_y`` kernel upwards along the starting column, weight both
   response traces with a 1-D Gaussian, and take the maxima as the steep-line
   and shallow-line anchor points.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import AnchorSearchError
from ..instrument.measurement import ChargeSensorMeter
from .config import AnchorConfig
from .gradient import MaskResponse, gaussian_window
from .region import PixelPoint
from .result import AnchorSearchResult


class AnchorFinder:
    """Locate the two initial anchor points with the paper's preprocessing."""

    def __init__(self, meter: ChargeSensorMeter, config: AnchorConfig | None = None) -> None:
        self._meter = meter
        self._config = config or AnchorConfig()

    @property
    def config(self) -> AnchorConfig:
        """The anchor-search configuration."""
        return self._config

    # ------------------------------------------------------------------
    def diagonal_probe(self) -> tuple[list[tuple[int, int]], tuple[int, int]]:
        """Probe the diagonal and return (probed pixels, brightest pixel)."""
        rows, cols = self._meter.shape
        n = self._config.n_diagonal_points
        row_indices = np.linspace(0, rows - 1, n).round().astype(int)
        col_indices = np.linspace(0, cols - 1, n).round().astype(int)
        pixels = [(int(r), int(c)) for r, c in zip(row_indices, col_indices)]
        # All diagonal points go through one batched probe.
        currents = self._meter.get_currents(row_indices, col_indices)
        brightest = pixels[int(np.argmax(currents))]
        return pixels, brightest

    def starting_point(self, brightest: tuple[int, int]) -> PixelPoint:
        """Starting point: the brighter of the diagonal maximum and the 10% margin.

        Both candidates are measured by their distance from the lower-left
        corner along each axis independently, as in the paper ("whichever is
        more distant from the lowest and leftmost point").
        """
        rows, cols = self._meter.shape
        margin_row = int(round(self._config.start_margin_fraction * (rows - 1)))
        margin_col = int(round(self._config.start_margin_fraction * (cols - 1)))
        row = max(brightest[0], margin_row)
        col = max(brightest[1], margin_col)
        # The starting point must leave room for the masks and the sweeps.
        mask_x = self._config.mask_x_array()
        mask_y = self._config.mask_y_array()
        row = int(min(row, rows - 1 - mask_y.shape[0]))
        col = int(min(col, cols - 1 - mask_x.shape[1]))
        if row < 0 or col < 0:
            raise AnchorSearchError(
                f"measurement grid {rows}x{cols} is too small for the anchor masks"
            )
        return PixelPoint(row=row, col=col)

    # ------------------------------------------------------------------
    def find(self) -> AnchorSearchResult:
        """Run the full preprocessing and return both anchor points."""
        rows, cols = self._meter.shape
        if min(rows, cols) < self._config.min_grid_extent:
            raise AnchorSearchError(
                f"measurement grid {rows}x{cols} is smaller than the minimum extent "
                f"({self._config.min_grid_extent}) required by the anchor masks and sweeps"
            )
        diagonal_pixels, brightest = self.diagonal_probe()
        start = self.starting_point(brightest)
        mask_x = self._config.mask_x_array()
        mask_y = self._config.mask_y_array()

        # --- steep-line anchor: Mask_x swept along the starting row ------
        sweep_x = MaskResponse(self._meter, mask_x)
        last_start_col = cols - mask_x.shape[1]
        if last_start_col <= start.col:
            raise AnchorSearchError("no room to sweep Mask_x to the right of the start point")
        responses_x = sweep_x.sweep_along_columns(
            start_col=start.col, end_col=last_start_col, center_row=start.row
        )
        window_x = gaussian_window(
            responses_x.size,
            center_fraction=self._config.gaussian_center_fraction,
            sigma_fraction=self._config.gaussian_sigma_fraction,
        )
        weighted_x = responses_x * window_x
        best_x = int(np.argmax(weighted_x))
        steep_col = start.col + best_x + mask_x.shape[1] // 2
        steep_anchor = PixelPoint(row=start.row, col=int(min(steep_col, cols - 1)))

        # --- shallow-line anchor: Mask_y swept along the starting column -
        sweep_y = MaskResponse(self._meter, mask_y)
        last_start_row = rows - mask_y.shape[0]
        if last_start_row <= start.row:
            raise AnchorSearchError("no room to sweep Mask_y above the start point")
        responses_y = sweep_y.sweep_along_rows(
            start_row=start.row, end_row=last_start_row, center_col=start.col
        )
        window_y = gaussian_window(
            responses_y.size,
            center_fraction=self._config.gaussian_center_fraction,
            sigma_fraction=self._config.gaussian_sigma_fraction,
        )
        weighted_y = responses_y * window_y
        best_y = int(np.argmax(weighted_y))
        shallow_row = start.row + best_y + mask_y.shape[0] // 2
        shallow_anchor = PixelPoint(row=int(min(shallow_row, rows - 1)), col=start.col)

        if steep_anchor.col <= shallow_anchor.col:
            raise AnchorSearchError(
                "anchor search failed: the steep-line anchor did not land to the "
                f"right of the shallow-line anchor ({steep_anchor} vs {shallow_anchor})"
            )
        if shallow_anchor.row <= steep_anchor.row:
            raise AnchorSearchError(
                "anchor search failed: the shallow-line anchor did not land above "
                f"the steep-line anchor ({shallow_anchor} vs {steep_anchor})"
            )
        return AnchorSearchResult(
            steep_anchor=steep_anchor,
            shallow_anchor=shallow_anchor,
            start_point=start,
            diagonal_pixels=tuple(diagonal_pixels),
            mask_x_responses=responses_x,
            mask_y_responses=responses_y,
        )
