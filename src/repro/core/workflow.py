"""End-to-end auto-tuning workflow: window search + fast extraction.

Ties together the two probe-efficient stages a real bring-up needs for each
plunger-gate pair:

1. :class:`~repro.core.window_search.TransitionWindowFinder` locates the
   voltage window containing the lowest charge transitions with a coarse scan
   (a few hundred probes over the full safe gate range);
2. :class:`~repro.core.extraction.FastVirtualGateExtractor` extracts the
   virtualization matrix inside that window at the requested resolution.

The workflow reports the combined probe/time budget, so the cost of finding
the window — which the paper's benchmarks assume has already been paid — is
accounted for explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ExtractionError
from ..instrument.session import ExperimentSession
from ..instrument.timing import TimingModel
from ..physics.dot_array import DotArrayDevice
from ..physics.noise import NoiseModel
from ..seeding import spawn_seeds
from .config import ExtractionConfig
from .extraction import FastVirtualGateExtractor
from .result import ExtractionResult
from .window_search import TransitionWindowFinder, WindowSearchConfig, WindowSearchResult


@dataclass(frozen=True)
class AutoTuneResult:
    """Combined outcome of window search plus extraction for one gate pair."""

    window_search: WindowSearchResult
    extraction: ExtractionResult
    metadata: dict = field(default_factory=dict)

    @property
    def success(self) -> bool:
        """Whether the extraction stage succeeded."""
        return self.extraction.success

    @property
    def total_probes(self) -> int:
        """Probes spent on the coarse search plus the extraction."""
        return self.window_search.n_probes + self.extraction.probe_stats.n_probes

    @property
    def total_elapsed_s(self) -> float:
        """Simulated experiment time spent in both stages."""
        return self.window_search.elapsed_s + self.extraction.probe_stats.elapsed_s

    def summary(self) -> dict:
        """Flat summary combining both stages."""
        payload = self.extraction.summary()
        payload.update(
            {
                "window_x": self.window_search.x_window,
                "window_y": self.window_search.y_window,
                "window_probes": self.window_search.n_probes,
                "total_probes": self.total_probes,
                "total_elapsed_s": self.total_elapsed_s,
            }
        )
        return payload


class AutoTuningWorkflow:
    """Find the transition window of a gate pair, then extract virtual gates."""

    def __init__(
        self,
        resolution: int = 100,
        extraction_config: ExtractionConfig | None = None,
        window_config: WindowSearchConfig | None = None,
        noise: NoiseModel | None = None,
        timing: TimingModel | None = None,
        seed: int | np.random.SeedSequence | None = None,
    ) -> None:
        if resolution < 16:
            raise ExtractionError("resolution must be at least 16")
        self._resolution = int(resolution)
        self._extraction_config = extraction_config or ExtractionConfig.paper_defaults()
        self._window_config = window_config or WindowSearchConfig()
        self._noise = noise
        self._timing = timing or TimingModel.paper_default()
        self._seed = seed

    # ------------------------------------------------------------------
    def run(
        self,
        device: DotArrayDevice,
        gate_x: int | str = "P1",
        gate_y: int | str = "P2",
        dot_a: int = 0,
        dot_b: int = 1,
        x_range: tuple[float, float] | None = None,
        y_range: tuple[float, float] | None = None,
    ) -> AutoTuneResult:
        """Run both stages against a simulated device."""
        # Spawned children keep the two stages' noise streams independent of
        # each other and of neighbouring root seeds (seed + 1 would collide
        # with the window-search stream of a run rooted at seed + 1).
        window_seed, extraction_seed = spawn_seeds(self._seed, 2)
        finder = TransitionWindowFinder(
            device,
            gate_x=gate_x,
            gate_y=gate_y,
            x_range=x_range,
            y_range=y_range,
            noise=self._noise,
            seed=window_seed,
            timing=self._timing,
            config=self._window_config,
        )
        window_result = finder.find()
        session = ExperimentSession.from_device(
            device,
            resolution=self._resolution,
            window=window_result.window,
            gate_x=gate_x,
            gate_y=gate_y,
            dot_a=dot_a,
            dot_b=dot_b,
            noise=self._noise,
            seed=extraction_seed,
            timing=self._timing,
            label=f"{device.name}:autotune",
        )
        extraction = FastVirtualGateExtractor(self._extraction_config).extract(session)
        return AutoTuneResult(
            window_search=window_result,
            extraction=extraction,
            metadata={
                "device": device.name,
                "gate_x": str(gate_x),
                "gate_y": str(gate_y),
                "resolution": self._resolution,
            },
        )
