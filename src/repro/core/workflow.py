"""End-to-end auto-tuning workflow: window search + fast extraction (+ retuning).

Ties together the two probe-efficient stages a real bring-up needs for each
plunger-gate pair:

1. :class:`~repro.core.window_search.TransitionWindowFinder` locates the
   voltage window containing the lowest charge transitions with a coarse scan
   (a few hundred probes over the full safe gate range);
2. the registered extraction pipeline (``fast-extraction`` by default; any
   :mod:`repro.pipeline` composition by name) extracts the virtualization
   matrix inside that window at the requested resolution.

Since the pipeline refactor the workflow *is* a stage composition: the
coarse search runs as a :class:`~repro.pipeline.stages.WindowSearchStage`,
the fine session opens through an
:class:`~repro.pipeline.stages.OpenSessionStage`, and the extraction stages
follow on the same :class:`~repro.pipeline.context.TuneContext` — so the
combined probe/time budget arrives as one per-stage telemetry sequence
(window search included), and the cost of finding the window — which the
paper's benchmarks assume has already been paid — is accounted for
explicitly.

On a *time-dependent* device (:class:`~repro.physics.drift.DeviceDrift`
and/or time-dependent noise, bundled conveniently by a
:class:`~repro.scenarios.catalog.LabScenario`), a matrix extracted at time
zero goes stale: the sensor wanders, charges jump, lever arms creep.
:meth:`AutoTuningWorkflow.run_with_retuning` is the drift-aware mode: it
keeps one continuous simulated timeline, and after each idle period
*detects* staleness by re-probing a handful of reference pixels it already
paid for — a few dwell times, not a new scan — and re-extracts only when the
device has measurably moved.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..exceptions import ExtractionError
from ..instrument.measurement import ChargeSensorMeter, DeviceBackend
from ..instrument.timing import TimingModel, VirtualClock
from ..physics.dot_array import DotArrayDevice
from ..physics.drift import DeviceDrift
from ..physics.noise import NoiseModel
from ..scenarios.catalog import LabScenario, get_scenario
from ..seeding import spawn_seeds
from .config import ExtractionConfig
from .extraction import METHOD_NAME
from .result import ExtractionResult, StageTelemetry
from .window_search import WindowSearchConfig, WindowSearchResult


@dataclass(frozen=True)
class AutoTuneResult:
    """Combined outcome of window search plus extraction for one gate pair."""

    window_search: WindowSearchResult
    extraction: ExtractionResult
    metadata: dict = field(default_factory=dict)
    stage_telemetry: tuple[StageTelemetry, ...] = ()

    @property
    def success(self) -> bool:
        """Whether the extraction stage succeeded."""
        return self.extraction.success

    @property
    def total_probes(self) -> int:
        """Probes spent on the coarse search plus the extraction."""
        return self.window_search.n_probes + self.extraction.probe_stats.n_probes

    @property
    def total_elapsed_s(self) -> float:
        """Simulated experiment time spent in both stages."""
        return self.window_search.elapsed_s + self.extraction.probe_stats.elapsed_s

    def summary(self) -> dict:
        """Flat summary combining both stages."""
        payload = self.extraction.summary()
        payload.update(
            {
                "window_x": self.window_search.x_window,
                "window_y": self.window_search.y_window,
                "window_probes": self.window_search.n_probes,
                "total_probes": self.total_probes,
                "total_elapsed_s": self.total_elapsed_s,
            }
        )
        return payload


@dataclass(frozen=True)
class StalenessCheck:
    """Outcome of one cheap re-probe of the reference pixels."""

    checked_at_s: float
    max_deviation_na: float
    threshold_na: float
    n_check_pixels: int

    @property
    def stale(self) -> bool:
        """Whether the device moved past the tolerance since last extraction."""
        return self.max_deviation_na > self.threshold_na


@dataclass(frozen=True)
class RetuneCycle:
    """One idle period: the staleness check and (if stale) the re-extraction."""

    check: StalenessCheck
    extraction: ExtractionResult | None = None
    stage_telemetry: tuple[StageTelemetry, ...] = ()

    @property
    def retuned(self) -> bool:
        """Whether this cycle triggered a re-extraction."""
        return self.extraction is not None


@dataclass(frozen=True)
class DriftAwareTuneResult:
    """Everything a drift-aware tuning run produced, on one timeline."""

    initial: AutoTuneResult
    cycles: tuple[RetuneCycle, ...]
    final_elapsed_s: float
    metadata: dict = field(default_factory=dict)

    @property
    def n_retunes(self) -> int:
        """How many idle periods ended in a re-extraction."""
        return sum(1 for cycle in self.cycles if cycle.retuned)

    @property
    def final_extraction(self) -> ExtractionResult:
        """The most recent extraction (initial when nothing went stale)."""
        for cycle in reversed(self.cycles):
            if cycle.extraction is not None:
                return cycle.extraction
        return self.initial.extraction

    @property
    def total_probes(self) -> int:
        """Physical probes across search, extractions, and staleness checks."""
        probes = self.initial.total_probes
        for cycle in self.cycles:
            probes += cycle.check.n_check_pixels
            if cycle.extraction is not None:
                probes += cycle.extraction.probe_stats.n_probes
        return probes

    @property
    def stage_telemetry(self) -> tuple[StageTelemetry, ...]:
        """Every stage the whole timeline ran, in execution order."""
        telemetry = list(self.initial.stage_telemetry)
        for cycle in self.cycles:
            telemetry.extend(cycle.stage_telemetry)
        return tuple(telemetry)

    def summary(self) -> dict:
        """Flat summary of the whole timeline."""
        return {
            "initial_success": self.initial.success,
            "n_cycles": len(self.cycles),
            "n_retunes": self.n_retunes,
            "final_success": self.final_extraction.success,
            "final_alpha_12": self.final_extraction.alpha_12,
            "final_alpha_21": self.final_extraction.alpha_21,
            "total_probes": self.total_probes,
            "final_elapsed_s": self.final_elapsed_s,
            **self.metadata,
        }


class AutoTuningWorkflow:
    """Find the transition window of a gate pair, then extract virtual gates.

    ``noise``, ``drift``, and ``time_dependent_noise`` describe the simulated
    environment every stage runs under; :meth:`for_scenario` fills them from
    a registered :class:`~repro.scenarios.catalog.LabScenario`.  ``pipeline``
    names the registered extraction composition to run inside the window —
    ``"fast-extraction"`` by default, any :func:`repro.pipeline.get_pipeline`
    name (or a :class:`~repro.pipeline.composer.TuningPipeline` instance)
    otherwise, which is how ablation variants ride the full workflow.
    """

    def __init__(
        self,
        resolution: int = 100,
        extraction_config: ExtractionConfig | None = None,
        window_config: WindowSearchConfig | None = None,
        noise: NoiseModel | None = None,
        timing: TimingModel | None = None,
        seed: int | np.random.SeedSequence | None = None,
        drift: DeviceDrift | None = None,
        time_dependent_noise: bool = False,
        pipeline: str | object | None = None,
    ) -> None:
        if resolution < 16:
            raise ExtractionError("resolution must be at least 16")
        self._resolution = int(resolution)
        # None lets the pipeline's own default configuration win, which is
        # what makes non-ExtractionConfig compositions (the dense-grid
        # baseline) runnable through the workflow; the registered fast
        # pipelines default to ExtractionConfig.paper_defaults() anyway.
        self._extraction_config = extraction_config
        self._window_config = window_config or WindowSearchConfig()
        self._noise = noise
        self._timing = timing or TimingModel.paper_default()
        self._seed = seed
        self._drift = drift
        self._time_dependent_noise = bool(time_dependent_noise)
        self._pipeline_spec = pipeline or METHOD_NAME

    @classmethod
    def for_scenario(
        cls,
        scenario: LabScenario | str,
        resolution: int = 100,
        extraction_config: ExtractionConfig | None = None,
        window_config: WindowSearchConfig | None = None,
        seed: int | np.random.SeedSequence | None = None,
        pipeline: str | object | None = None,
    ) -> "AutoTuningWorkflow":
        """A workflow configured for a (possibly named) lab scenario."""
        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        return cls(
            resolution=resolution,
            extraction_config=extraction_config,
            window_config=window_config,
            noise=scenario.noise,
            timing=scenario.timing,
            seed=seed,
            drift=scenario.drift,
            time_dependent_noise=scenario.time_dependent_noise,
            pipeline=pipeline,
        )

    def _pipeline(self):
        """The extraction pipeline instance for this run."""
        from ..pipeline.composer import TuningPipeline
        from ..pipeline.registry import get_pipeline

        if isinstance(self._pipeline_spec, TuningPipeline):
            return self._pipeline_spec
        return get_pipeline(str(self._pipeline_spec))

    def _window_search_stage(
        self,
        device: DotArrayDevice,
        gate_x: int | str,
        gate_y: int | str,
        x_range: tuple[float, float] | None,
        y_range: tuple[float, float] | None,
        seed: np.random.SeedSequence,
    ):
        """The coarse-search stage under this workflow's environment.

        One construction point for both :meth:`run` and
        :meth:`run_with_retuning`, so the two modes cannot drift apart in
        which noise/drift/timing the window is searched under.
        """
        from ..pipeline.stages import WindowSearchStage

        return WindowSearchStage(
            device,
            gate_x=gate_x,
            gate_y=gate_y,
            x_range=x_range,
            y_range=y_range,
            noise=self._noise,
            seed=seed,
            timing=self._timing,
            config=self._window_config,
            drift=self._drift,
            time_dependent_noise=self._time_dependent_noise,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        device: DotArrayDevice,
        gate_x: int | str = "P1",
        gate_y: int | str = "P2",
        dot_a: int = 0,
        dot_b: int = 1,
        x_range: tuple[float, float] | None = None,
        y_range: tuple[float, float] | None = None,
    ) -> AutoTuneResult:
        """Run the full stage composition against a simulated device."""
        from ..pipeline.composer import run_stage
        from ..pipeline.context import TuneContext
        from ..pipeline.stages import OpenSessionStage

        # Spawned children keep the two stages' noise streams independent of
        # each other and of neighbouring root seeds (seed + 1 would collide
        # with the window-search stream of a run rooted at seed + 1).
        window_seed, extraction_seed = spawn_seeds(self._seed, 2)
        ctx = TuneContext(config=self._extraction_config)
        setup_telemetry: list[StageTelemetry] = []
        run_stage(
            self._window_search_stage(
                device, gate_x, gate_y, x_range, y_range, window_seed
            ),
            ctx,
            setup_telemetry,
        )
        run_stage(
            OpenSessionStage(
                device,
                resolution=self._resolution,
                gate_x=gate_x,
                gate_y=gate_y,
                dot_a=dot_a,
                dot_b=dot_b,
                noise=self._noise,
                seed=extraction_seed,
                timing=self._timing,
                drift=self._drift,
                time_dependent_noise=self._time_dependent_noise,
                label=f"{device.name}:autotune",
            ),
            ctx,
            setup_telemetry,
        )
        extraction, ctx = self._pipeline().execute(ctx)
        return AutoTuneResult(
            window_search=ctx.window,
            extraction=extraction,
            metadata={
                "device": device.name,
                "gate_x": str(gate_x),
                "gate_y": str(gate_y),
                "resolution": self._resolution,
            },
            stage_telemetry=tuple(setup_telemetry) + extraction.stage_telemetry,
        )

    def run_with_retuning(
        self,
        device: DotArrayDevice,
        gate_x: int | str = "P1",
        gate_y: int | str = "P2",
        idle_time_s: float = 600.0,
        n_cycles: int = 3,
        staleness_threshold_na: float = 0.08,
        n_check_pixels: int = 16,
        x_range: tuple[float, float] | None = None,
        y_range: tuple[float, float] | None = None,
    ) -> DriftAwareTuneResult:
        """Tune, then watch the device age and re-extract when it moves.

        One continuous simulated timeline: the coarse window search, the
        initial extraction, then ``n_cycles`` idle periods of
        ``idle_time_s``.  After each idle period a
        :class:`~repro.pipeline.stages.StalenessCheckStage` re-probes
        ``n_check_pixels`` of the pixels the last extraction already
        measured (a few dwell times of cost) and compares against the stored
        values; a maximum deviation beyond ``staleness_threshold_na``
        declares the virtualization matrix stale and triggers a fresh
        extraction *at the device's current age* on the same window.

        Returns the initial result plus every check and re-extraction —
        with per-stage telemetry on one timeline — so callers can see both
        how often the environment forced a retune and what each retune cost.
        """
        from ..pipeline.composer import run_stage
        from ..pipeline.context import TuneContext
        from ..pipeline.stages import StalenessCheckStage

        if idle_time_s < 0:
            raise ExtractionError("idle_time_s must be non-negative")
        if n_cycles < 1:
            raise ExtractionError("n_cycles must be at least 1")
        if staleness_threshold_na <= 0:
            raise ExtractionError("staleness_threshold_na must be positive")
        if n_check_pixels < 1:
            raise ExtractionError("n_check_pixels must be at least 1")
        window_seed, extraction_seed = spawn_seeds(self._seed, 2)
        setup_ctx = TuneContext(config=self._extraction_config)
        setup_telemetry: list[StageTelemetry] = []
        run_stage(
            self._window_search_stage(
                device, gate_x, gate_y, x_range, y_range, window_seed
            ),
            setup_ctx,
            setup_telemetry,
        )
        window_result = setup_ctx.window
        (x_min, x_max), (y_min, y_max) = window_result.window
        backend = DeviceBackend(
            device,
            x_voltages=np.linspace(x_min, x_max, self._resolution),
            y_voltages=np.linspace(y_min, y_max, self._resolution),
            gate_x=gate_x,
            gate_y=gate_y,
            noise=self._noise,
            seed=extraction_seed,
            drift=self._drift,
            time_dependent_noise=self._time_dependent_noise,
            probe_interval_s=self._timing.cost_per_probe_s,
        )
        # One clock for the whole timeline; the coarse search already spent
        # simulated time, so the fine stages start aged by that much.
        clock = VirtualClock(self._timing)
        clock.advance(window_result.elapsed_s)
        pipeline = self._pipeline()

        initial_extraction, meter = self._extract_stage(pipeline, backend, clock)
        initial = AutoTuneResult(
            window_search=window_result,
            extraction=initial_extraction,
            metadata={
                "device": device.name,
                "gate_x": str(gate_x),
                "gate_y": str(gate_y),
                "resolution": self._resolution,
            },
            stage_telemetry=tuple(setup_telemetry)
            + initial_extraction.stage_telemetry,
        )
        check_rows, check_cols, reference = self._reference_pixels(
            meter, n_check_pixels
        )

        cycles: list[RetuneCycle] = []
        for _ in range(n_cycles):
            clock.advance(idle_time_s)
            cycle_ctx = TuneContext(config=self._extraction_config)
            cycle_telemetry: list[StageTelemetry] = []
            run_stage(
                StalenessCheckStage(
                    backend,
                    clock,
                    check_rows,
                    check_cols,
                    reference,
                    staleness_threshold_na,
                ),
                cycle_ctx,
                cycle_telemetry,
            )
            check: StalenessCheck = cycle_ctx.extras["staleness_check"]
            extraction: ExtractionResult | None = None
            if check.stale:
                extraction, retune_meter = self._extract_stage(
                    pipeline, backend, clock
                )
                cycle_telemetry.extend(extraction.stage_telemetry)
                check_rows, check_cols, reference = self._reference_pixels(
                    retune_meter, n_check_pixels
                )
            cycles.append(
                RetuneCycle(
                    check=check,
                    extraction=extraction,
                    stage_telemetry=tuple(cycle_telemetry),
                )
            )
        return DriftAwareTuneResult(
            initial=initial,
            cycles=tuple(cycles),
            final_elapsed_s=clock.elapsed_s,
            metadata={
                "device": device.name,
                "idle_time_s": idle_time_s,
                "staleness_threshold_na": staleness_threshold_na,
            },
        )

    # ------------------------------------------------------------------
    def _extract_stage(
        self,
        pipeline,
        backend: DeviceBackend,
        clock: VirtualClock,
    ) -> tuple[ExtractionResult, ChargeSensorMeter]:
        """One extraction on the shared timeline, with *stage-local* cost.

        The shared clock reads absolute timeline age, so the raw
        ``probe_stats.elapsed_s`` would include everything that happened
        before this stage (window search, earlier cycles); rewrite it to the
        time this extraction itself consumed.  The per-stage telemetry is
        snapshot-diffed and therefore already stage-local.
        """
        from ..pipeline.context import TuneContext

        started_s = clock.elapsed_s
        meter = ChargeSensorMeter(backend, clock=clock)
        ctx = TuneContext(meter=meter, config=self._extraction_config)
        result, _ = pipeline.execute(ctx)
        stats = replace(result.probe_stats, elapsed_s=clock.elapsed_s - started_s)
        return replace(result, probe_stats=stats), meter

    @staticmethod
    def _reference_pixels(
        meter: ChargeSensorMeter, n_check_pixels: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Evenly spaced sample of the meter's measured pixels + their values."""
        measured = meter.log.unique_pixels()
        if not measured:
            raise ExtractionError(
                "no measured pixels to build staleness references from"
            )
        indices = np.unique(
            np.linspace(0, len(measured) - 1, min(n_check_pixels, len(measured)))
            .round()
            .astype(int)
        )
        pixels = np.asarray(measured, dtype=np.int64)[indices]
        rows = pixels[:, 0]
        cols = pixels[:, 1]
        image = meter.measured_image()
        return rows, cols, image[rows, cols]
