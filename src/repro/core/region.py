"""The shrinking right-triangular search region of the paper's Section 4.2.

Both transition lines of the lowest charge states lie inside the right
triangle whose hypotenuse connects the two anchor points (one on each line)
and whose right-angle corner sits at the row of the shallow-line anchor and
the column of the steep-line anchor.  :class:`TriangularRegion` captures that
geometry, answers pixel-membership queries using pixel centres (as the paper
specifies), and yields the per-row / per-column probe segments the sweeps use.

Conventions: rows index the y-axis gate bottom-up, columns index the x-axis
gate left-to-right (DESIGN.md §2).  The steep-line anchor is the one at the
*lower right* (small row, large column); the shallow-line anchor at the
*upper left* (large row, small column).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import SweepError


@dataclass(frozen=True)
class PixelPoint:
    """A pixel on the measurement grid, addressed as ``(row, col)``."""

    row: int
    col: int

    def as_tuple(self) -> tuple[int, int]:
        """The ``(row, col)`` tuple."""
        return self.row, self.col


class TriangularRegion:
    """Right triangle spanned by the steep-line and shallow-line anchors."""

    def __init__(self, steep_anchor: PixelPoint, shallow_anchor: PixelPoint) -> None:
        if steep_anchor.row >= shallow_anchor.row:
            raise SweepError(
                "the steep-line anchor must lie below the shallow-line anchor "
                f"(got rows {steep_anchor.row} and {shallow_anchor.row})"
            )
        if steep_anchor.col <= shallow_anchor.col:
            raise SweepError(
                "the steep-line anchor must lie to the right of the shallow-line anchor "
                f"(got columns {steep_anchor.col} and {shallow_anchor.col})"
            )
        self._steep = steep_anchor
        self._shallow = shallow_anchor

    # ------------------------------------------------------------------
    @property
    def steep_anchor(self) -> PixelPoint:
        """Anchor on the steep (x-axis dot) transition line."""
        return self._steep

    @property
    def shallow_anchor(self) -> PixelPoint:
        """Anchor on the shallow (y-axis dot) transition line."""
        return self._shallow

    @property
    def corner(self) -> PixelPoint:
        """The right-angle corner (shallow anchor's row, steep anchor's column)."""
        return PixelPoint(row=self._shallow.row, col=self._steep.col)

    def with_steep_anchor(self, anchor: PixelPoint) -> "TriangularRegion":
        """Copy of the region with the steep-line anchor replaced (shrinking)."""
        return TriangularRegion(steep_anchor=anchor, shallow_anchor=self._shallow)

    def with_shallow_anchor(self, anchor: PixelPoint) -> "TriangularRegion":
        """Copy of the region with the shallow-line anchor replaced (shrinking)."""
        return TriangularRegion(steep_anchor=self._steep, shallow_anchor=anchor)

    # ------------------------------------------------------------------
    def hypotenuse_col_at_row(self, row: float) -> float:
        """Column of the hypotenuse at a given (fractional) row."""
        rise = self._shallow.row - self._steep.row
        run = self._shallow.col - self._steep.col
        return self._steep.col + (row - self._steep.row) * run / rise

    def hypotenuse_row_at_col(self, col: float) -> float:
        """Row of the hypotenuse at a given (fractional) column."""
        rise = self._shallow.row - self._steep.row
        run = self._shallow.col - self._steep.col
        return self._steep.row + (col - self._steep.col) * rise / run

    def contains(self, row: int, col: int) -> bool:
        """Pixel-centre membership test."""
        if not (self._steep.row <= row <= self._shallow.row):
            return False
        if not (self._shallow.col <= col <= self._steep.col):
            return False
        return col >= self.hypotenuse_col_at_row(row) - 1e-9

    def row_segment(self, row: int) -> list[int]:
        """Columns inside the region at a given row, left to right."""
        if not (self._steep.row <= row <= self._shallow.row):
            return []
        lower = self.hypotenuse_col_at_row(row)
        start = int(max(self._shallow.col, _ceil(lower)))
        end = int(self._steep.col)
        if start > end:
            return []
        return list(range(start, end + 1))

    def column_segment(self, col: int) -> list[int]:
        """Rows inside the region at a given column, bottom to top."""
        if not (self._shallow.col <= col <= self._steep.col):
            return []
        lower = self.hypotenuse_row_at_col(col)
        start = int(max(self._steep.row, _ceil(lower)))
        end = int(self._shallow.row)
        if start > end:
            return []
        return list(range(start, end + 1))

    def pixel_count(self) -> int:
        """Number of pixels inside the region (used by diagnostics/tests)."""
        return sum(
            len(self.row_segment(row))
            for row in range(self._steep.row, self._shallow.row + 1)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TriangularRegion(steep={self._steep.as_tuple()}, "
            f"shallow={self._shallow.as_tuple()})"
        )


def _ceil(value: float) -> int:
    integer = int(value)
    return integer if value <= integer + 1e-9 else integer + 1
