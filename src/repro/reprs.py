"""Content-based ``__repr__`` support for fingerprint-bearing objects.

Checkpoint fingerprints (:func:`repro.campaign.engine.campaign_fingerprint`)
and the contract audit (:mod:`repro.lint.contracts`) both require that an
object's repr describe its *content*, never its memory address: CPython's
default ``object.__repr__`` embeds ``0x…``, which changes on every process
start, so any identity built from it can never match on resume.

:class:`ContentRepr` is the one-line fix for plain (non-dataclass) classes:
it renders every instance attribute, sorted by name, with leading
underscores stripped — ``ProcessPoolBackend(chunk_size=None, max_workers=4)``
— which is stable across processes as long as the attribute values
themselves repr by content.
"""

from __future__ import annotations

import re

__all__ = ["ADDRESS_REPR", "ContentRepr", "content_repr", "has_address_repr"]

#: The shape of CPython's default ``object.__repr__`` — "<... at 0x7f...>".
ADDRESS_REPR = re.compile(r"\b0x[0-9a-fA-F]{4,}\b")


def content_repr(obj: object) -> str:
    """A ``Class(attr=value, ...)`` repr from the instance's attributes."""
    pairs = ", ".join(
        f"{name.lstrip('_')}={value!r}" for name, value in sorted(vars(obj).items())
    )
    return f"{type(obj).__name__}({pairs})"


def has_address_repr(obj: object) -> bool:
    """Whether ``repr(obj)`` embeds a memory address (recursively included
    sub-reprs count: one address-bearing attribute poisons the whole repr)."""
    return ADDRESS_REPR.search(repr(obj)) is not None


class ContentRepr:
    """Mixin giving a class a content-based, address-free ``__repr__``."""

    def __repr__(self) -> str:
        return content_repr(self)
