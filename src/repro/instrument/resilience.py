"""Probe-level resilience policy for the charge-sensor meter.

Real measurement stacks wrap every instrument read in a retry loop: a
transient ADC glitch is retried after a short backoff, a read that exceeds
its timeout is abandoned, and an instrument that keeps failing trips a
circuit breaker so the control software reports a fault instead of hanging
forever.  :class:`ProbeRetryPolicy` captures that loop for
:class:`~repro.instrument.measurement.ChargeSensorMeter`.

Everything here is *simulated-time* resilience: backoffs, stalls, and
timeout budgets are charged to the session's
:class:`~repro.instrument.timing.VirtualClock`, never to the wall clock, so
a chaos run with thousands of injected faults still executes in milliseconds
and is bit-reproducible.  (Runner-level retry of whole jobs — which *is*
wall-clock — lives in :class:`repro.execution.controller.RetryPolicy`.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError

__all__ = ["ProbeRetryPolicy"]


@dataclass(frozen=True)
class ProbeRetryPolicy:
    """How the meter retries a probe that a fault disrupted.

    Attributes
    ----------
    max_attempts:
        Total attempts per probe including the first (1 = fail on the first
        fault).  Every attempt charges a full probe cost to the virtual
        clock, so retried probes are *later* probes — their fault draws are
        fresh, exactly as on real hardware where the retry samples a
        different instant.
    backoff_s:
        Simulated pause before the first retry; doubles by
        ``backoff_factor`` on each subsequent retry.  Charged to the
        virtual clock.
    backoff_factor:
        Multiplier applied to the backoff between consecutive retries.
    timeout_s:
        Per-probe stall budget.  A probe whose injected stall exceeds this
        charges only ``timeout_s`` (the time spent waiting before giving
        up) and counts as a failed attempt raising
        :class:`~repro.exceptions.ProbeTimeoutError`; ``None`` tolerates
        stalls of any length.
    breaker_failures:
        Circuit breaker: after this many *consecutive* failed attempts
        (across probes), the meter stops touching the backend and raises
        :class:`~repro.exceptions.CircuitBreakerOpenError` on every further
        probe until :meth:`~repro.instrument.measurement.ChargeSensorMeter.reset`.
        ``0`` disables the breaker.  A successful attempt resets the count.
    """

    max_attempts: int = 3
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    timeout_s: float | None = None
    breaker_failures: int = 8

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if self.backoff_s < 0:
            raise ConfigurationError("backoff_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be at least 1.0")
        if self.timeout_s is not None and self.timeout_s < 0:
            raise ConfigurationError("timeout_s must be non-negative")
        if self.breaker_failures < 0:
            raise ConfigurationError("breaker_failures must be non-negative")

    @classmethod
    def no_retry(cls) -> "ProbeRetryPolicy":
        """Fail on the first fault (but still with typed errors)."""
        return cls(max_attempts=1, breaker_failures=0)
