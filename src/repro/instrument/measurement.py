"""Simulated charge-sensor measurement: the paper's ``getCurrent`` (Alg. 1).

The extraction algorithms never see the device physics directly; they call a
measurement object that

1. sets the two plunger-gate voltages,
2. waits the dwell time (charged to a :class:`~repro.instrument.timing.VirtualClock`),
3. returns the charge-sensor current.

Two backends supply the current value:

* :class:`DatasetBackend` replays a pre-recorded (or pre-simulated)
  :class:`~repro.physics.csd.ChargeStabilityDiagram`, exactly as the paper
  replays the qflow data — a probe returns the pixel nearest to the requested
  voltages.
* :class:`DeviceBackend` evaluates the physics model on demand over a
  configured voltage grid, optionally adding a reproducible noise field.

:class:`ChargeSensorMeter` wraps a backend with dwell-time accounting, a probe
log (used to reproduce Figure 7), optional per-pixel caching (re-requesting an
already measured pixel costs nothing, mirroring how an automation script keeps
values it has already paid for), and an optional probe budget.

Every entry point exists in a scalar and a batched form: ``current`` /
``currents`` on the backends and ``get_current`` / ``get_currents`` on the
meter.  The batched form serves whole pixel-index arrays through one
vectorised physics evaluation while preserving the scalar semantics
bit-for-bit — same values, same probe counts, same cache and budget
behaviour, same log contents — so algorithms can batch their hot loops
without changing the paper's accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import (
    CircuitBreakerOpenError,
    InstrumentFault,
    MeasurementError,
    ProbeBudgetExceededError,
    ProbeTimeoutError,
)
from ..kernelcache import (
    KernelCache,
    KernelCacheEntry,
    default_kernel_cache,
    kernel_fingerprint,
)
from ..physics.csd import ChargeStabilityDiagram, nearest_axis_index, uniform_axis_step
from ..physics.dot_array import DotArrayDevice
from ..physics.drift import DeviceDrift, DeviceDriftState
from ..physics.noise import NoiseModel, NoNoise, TimeDependentNoise
from .resilience import ProbeRetryPolicy
from .timing import TimingModel, VirtualClock

#: Initial column capacity of a probe log.
_LOG_INITIAL_CAPACITY = 64


@dataclass(frozen=True)
class ProbeRecord:
    """One measured voltage point."""

    row: int
    col: int
    voltage_x: float
    voltage_y: float
    current_na: float
    time_s: float
    cached: bool = False


class ProbeLog:
    """Ordered log of every measurement request.

    Stored as growable columnar numpy arrays (amortised O(1) appends, O(n)
    bulk extends) rather than one Python object per request, so logging does
    not dominate batched acquisitions.  The record-oriented surface —
    :attr:`records`, iteration, indexing, ``append`` of a
    :class:`ProbeRecord` — is preserved on top of the columns.
    """

    _COLUMN_NAMES = (
        "_rows",
        "_cols",
        "_voltage_x",
        "_voltage_y",
        "_currents",
        "_times",
        "_cached",
    )

    def __init__(self, records: list[ProbeRecord] | None = None) -> None:
        self._n = 0
        self._rows = np.empty(_LOG_INITIAL_CAPACITY, dtype=np.int64)
        self._cols = np.empty(_LOG_INITIAL_CAPACITY, dtype=np.int64)
        self._voltage_x = np.empty(_LOG_INITIAL_CAPACITY, dtype=float)
        self._voltage_y = np.empty(_LOG_INITIAL_CAPACITY, dtype=float)
        self._currents = np.empty(_LOG_INITIAL_CAPACITY, dtype=float)
        self._times = np.empty(_LOG_INITIAL_CAPACITY, dtype=float)
        self._cached = np.empty(_LOG_INITIAL_CAPACITY, dtype=bool)
        if records:
            for record in records:
                self.append(record)

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def _reserve(self, extra: int) -> None:
        need = self._n + extra
        capacity = self._rows.size
        if need <= capacity:
            return
        new_capacity = max(need, 2 * capacity)
        for name in self._COLUMN_NAMES:
            old = getattr(self, name)
            grown = np.empty(new_capacity, dtype=old.dtype)
            grown[: self._n] = old[: self._n]
            setattr(self, name, grown)

    def append(self, record: ProbeRecord) -> None:
        """Append a record."""
        self.append_probe(
            record.row,
            record.col,
            record.voltage_x,
            record.voltage_y,
            record.current_na,
            record.time_s,
            record.cached,
        )

    def append_probe(
        self,
        row: int,
        col: int,
        voltage_x: float,
        voltage_y: float,
        current_na: float,
        time_s: float,
        cached: bool,
    ) -> None:
        """Append one request without building a :class:`ProbeRecord`."""
        self._reserve(1)
        i = self._n
        self._rows[i] = row
        self._cols[i] = col
        self._voltage_x[i] = voltage_x
        self._voltage_y[i] = voltage_y
        self._currents[i] = current_na
        self._times[i] = time_s
        self._cached[i] = cached
        self._n = i + 1

    def extend(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        voltage_x: np.ndarray,
        voltage_y: np.ndarray,
        currents_na: np.ndarray,
        times_s: np.ndarray,
        cached: np.ndarray,
    ) -> None:
        """Append a whole batch of requests in one columnar copy."""
        n = len(rows)
        self._reserve(n)
        grown = slice(self._n, self._n + n)
        self._rows[grown] = rows
        self._cols[grown] = cols
        self._voltage_x[grown] = voltage_x
        self._voltage_y[grown] = voltage_y
        self._currents[grown] = currents_na
        self._times[grown] = times_s
        self._cached[grown] = cached
        self._n += n

    # ------------------------------------------------------------------
    # Record-oriented views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index: int) -> ProbeRecord:
        i = int(index)
        if i < 0:
            i += self._n
        if not 0 <= i < self._n:
            raise IndexError(f"log index {index} out of range for {self._n} records")
        return ProbeRecord(
            row=int(self._rows[i]),
            col=int(self._cols[i]),
            voltage_x=float(self._voltage_x[i]),
            voltage_y=float(self._voltage_y[i]),
            current_na=float(self._currents[i]),
            time_s=float(self._times[i]),
            cached=bool(self._cached[i]),
        )

    def __iter__(self):
        for i in range(self._n):
            yield self[i]

    @property
    def records(self) -> tuple[ProbeRecord, ...]:
        """Materialised record view of the columns (compatibility API).

        A fresh tuple per access — O(n), and deliberately immutable so that
        code appending to it fails loudly instead of mutating a throwaway
        copy; append through :meth:`append` / :meth:`extend` instead.
        """
        return tuple(self[i] for i in range(self._n))

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def n_requests(self) -> int:
        """Total number of requests, including cache hits."""
        return self._n

    @property
    def n_unique_pixels(self) -> int:
        """Number of distinct pixels that were physically measured."""
        measured = ~self._cached[: self._n]
        if not np.any(measured):
            return 0
        pairs = np.column_stack(
            [self._rows[: self._n][measured], self._cols[: self._n][measured]]
        )
        return int(np.unique(pairs, axis=0).shape[0])

    def unique_pixels(self) -> list[tuple[int, int]]:
        """Distinct physically measured pixels in first-probe order."""
        measured = ~self._cached[: self._n]
        if not np.any(measured):
            return []
        pairs = np.column_stack(
            [self._rows[: self._n][measured], self._cols[: self._n][measured]]
        )
        _, first_seen = np.unique(pairs, axis=0, return_index=True)
        ordered = pairs[np.sort(first_seen)]
        return [(int(row), int(col)) for row, col in ordered]

    @property
    def n_cached(self) -> int:
        """Number of requests answered from the meter cache."""
        return int(np.count_nonzero(self._cached[: self._n]))

    def as_arrays(self) -> dict[str, np.ndarray]:
        """Columns of the log as independent numpy arrays (export/plotting)."""
        n = self._n
        return {
            "row": self._rows[:n].astype(int),
            "col": self._cols[:n].astype(int),
            "voltage_x": self._voltage_x[:n].copy(),
            "voltage_y": self._voltage_y[:n].copy(),
            "current_na": self._currents[:n].copy(),
            "time_s": self._times[:n].copy(),
            "cached": self._cached[:n].copy(),
        }

    def probe_mask(self, shape: tuple[int, int]) -> np.ndarray:
        """Boolean image of which pixels were physically measured."""
        mask = np.zeros(shape, dtype=bool)
        measured = ~self._cached[: self._n]
        rows = self._rows[: self._n][measured]
        cols = self._cols[: self._n][measured]
        in_bounds = (rows >= 0) & (rows < shape[0]) & (cols >= 0) & (cols < shape[1])
        mask[rows[in_bounds], cols[in_bounds]] = True
        return mask


@dataclass(frozen=True)
class MeterSnapshot:
    """Point-in-time cost counters of a :class:`ChargeSensorMeter`.

    Taken with :meth:`ChargeSensorMeter.snapshot`; two snapshots subtract
    into the cost *delta* of whatever ran between them (:meth:`delta`).
    This is how the pipeline layer attributes probes, cache hits, and
    simulated seconds to individual stages without the stages having to
    do any bookkeeping themselves.
    """

    n_probes: int
    n_requests: int
    n_cache_hits: int
    elapsed_s: float

    def delta(self, later: "MeterSnapshot") -> "MeterSnapshot":
        """The cost accumulated between this snapshot and a ``later`` one."""
        return MeterSnapshot(
            n_probes=later.n_probes - self.n_probes,
            n_requests=later.n_requests - self.n_requests,
            n_cache_hits=later.n_cache_hits - self.n_cache_hits,
            elapsed_s=later.elapsed_s - self.elapsed_s,
        )


class MeasurementBackend:
    """Source of noise-inclusive sensor currents over a fixed voltage grid."""

    @property
    def x_voltages(self) -> np.ndarray:
        """Column voltages of the grid."""
        raise NotImplementedError

    @property
    def y_voltages(self) -> np.ndarray:
        """Row voltages of the grid."""
        raise NotImplementedError

    @property
    def is_time_dependent(self) -> bool:
        """Whether pixel values depend on the simulated probe timestamp.

        Static backends (the default) may be probed with or without
        timestamps; time-dependent ones require them.
        """
        return False

    def current(self, row: int, col: int, time_s: float | None = None) -> float:
        """Sensor current (nA) of the pixel at ``(row, col)``.

        ``time_s`` is the simulated clock reading at which the probe happens;
        static backends ignore it, time-dependent ones require it.
        """
        raise NotImplementedError

    def currents(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        times_s: np.ndarray | None = None,
    ) -> np.ndarray:
        """Sensor currents (nA) for arrays of pixel indices.

        The base implementation loops over :meth:`current`; both built-in
        backends override it with a fully vectorised evaluation that returns
        bit-identical values.  ``times_s``, when given, carries one simulated
        timestamp per probe.
        """
        rows, cols = self.validate_pixels(rows, cols)
        times = self.validate_times(times_s, rows.size)
        return np.array(
            [
                self.current(int(row), int(col), None if times is None else float(t))
                for row, col, t in zip(
                    rows, cols, times if times is not None else np.zeros(rows.size)
                )
            ],
            dtype=float,
        )

    # Convenience shared by both backends -------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """``(n_rows, n_cols)`` of the measurement grid."""
        return self.y_voltages.size, self.x_voltages.size

    @property
    def n_pixels(self) -> int:
        """Total number of grid pixels."""
        return int(self.shape[0] * self.shape[1])

    def voltage_at(self, row: int, col: int) -> tuple[float, float]:
        """Voltages ``(vx, vy)`` of a pixel."""
        return float(self.x_voltages[col]), float(self.y_voltages[row])

    def _axis_steps(self) -> tuple[float | None, float | None]:
        steps = getattr(self, "_axis_steps_cache", None)
        if steps is None:
            steps = (
                uniform_axis_step(self.x_voltages),
                uniform_axis_step(self.y_voltages),
            )
            self._axis_steps_cache = steps
        return steps

    def pixel_at(self, vx: float, vy: float) -> tuple[int, int]:
        """Nearest pixel ``(row, col)`` to a voltage point.

        O(1) round-and-clip arithmetic on uniformly spaced axes (the common
        case); falls back to an ``argmin`` scan on irregular axes.
        """
        x_step, y_step = self._axis_steps()
        col = nearest_axis_index(self.x_voltages, vx, x_step)
        row = nearest_axis_index(self.y_voltages, vy, y_step)
        return row, col

    def validate_pixel(self, row: int, col: int) -> None:
        """Raise :class:`MeasurementError` if the pixel is off-grid."""
        rows, cols = self.shape
        if not (0 <= row < rows and 0 <= col < cols):
            raise MeasurementError(
                f"pixel ({row}, {col}) outside the {rows}x{cols} measurement grid"
            )

    def validate_pixels(
        self, rows: np.ndarray | list, cols: np.ndarray | list
    ) -> tuple[np.ndarray, np.ndarray]:
        """Validate whole pixel-index arrays; returns them as 1-D ``int64``.

        Raises :class:`MeasurementError` naming the first off-grid pixel.
        """
        rows = np.atleast_1d(np.asarray(rows))
        cols = np.atleast_1d(np.asarray(cols))
        if rows.shape != cols.shape:
            raise MeasurementError(
                f"rows and cols must have matching shapes, got {rows.shape} "
                f"and {cols.shape}"
            )
        rows = rows.ravel()
        cols = cols.ravel()
        if rows.size and not (
            np.issubdtype(rows.dtype, np.integer)
            and np.issubdtype(cols.dtype, np.integer)
        ):
            raise MeasurementError("pixel indices must be integers")
        rows = rows.astype(np.int64, copy=False)
        cols = cols.astype(np.int64, copy=False)
        n_rows, n_cols = self.shape
        off_grid = (rows < 0) | (rows >= n_rows) | (cols < 0) | (cols >= n_cols)
        if np.any(off_grid):
            i = int(np.argmax(off_grid))
            raise MeasurementError(
                f"pixel ({int(rows[i])}, {int(cols[i])}) outside the "
                f"{n_rows}x{n_cols} measurement grid"
            )
        return rows, cols

    def validate_times(
        self, times_s: np.ndarray | list | None, n: int
    ) -> np.ndarray | None:
        """Check per-probe timestamps against the request count.

        Returns a flat float array (or ``None`` when omitted); a
        time-dependent backend refuses probes without timestamps, because it
        cannot know *when* the evolving device is being measured.
        """
        if times_s is None:
            if self.is_time_dependent:
                raise MeasurementError(
                    "this backend is time-dependent (drift and/or "
                    "time-dependent noise); probes require per-probe "
                    "timestamps — measure through a ChargeSensorMeter, or "
                    "pass times_s explicitly"
                )
            return None
        times = np.atleast_1d(np.asarray(times_s, dtype=float)).ravel()
        if times.size != n:
            raise MeasurementError(
                f"expected {n} probe timestamps, got {times.size}"
            )
        return times


class DatasetBackend(MeasurementBackend):
    """Replay a recorded/simulated charge-stability diagram."""

    def __init__(self, csd: ChargeStabilityDiagram) -> None:
        self._csd = csd

    @property
    def csd(self) -> ChargeStabilityDiagram:
        """The replayed diagram."""
        return self._csd

    @property
    def x_voltages(self) -> np.ndarray:
        return self._csd.x_voltages

    @property
    def y_voltages(self) -> np.ndarray:
        return self._csd.y_voltages

    def current(self, row: int, col: int, time_s: float | None = None) -> float:
        self.validate_pixel(row, col)
        return float(self._csd.data[row, col])

    def currents(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        times_s: np.ndarray | None = None,
    ) -> np.ndarray:
        """Batched replay: one fancy-index into the stored pixel grid."""
        rows, cols = self.validate_pixels(rows, cols)
        self.validate_times(times_s, rows.size)
        return self._csd.data[rows, cols].astype(float)


class DeviceBackend(MeasurementBackend):
    """Evaluate the device physics on demand over a configured grid.

    Parameters beyond the grid/noise basics:

    drift:
        Optional :class:`~repro.physics.drift.DeviceDrift` describing how the
        device itself evolves with simulated time (sensor operating-point
        wander, charge jumps, periodic interference, lever-arm creep).
    time_dependent_noise:
        When true, the noise model is evaluated at each probe's simulated
        timestamp through :meth:`~repro.physics.noise.NoiseModel.at_times`
        instead of as one static per-pixel field — re-probing the same pixel
        later in the run then sees *different* noise, as on real hardware.
    probe_interval_s:
        Nominal simulated cost of one probe; converts pixel-unit noise
        parameters (telegraph dwell, 1/f band) into seconds.  Pass the
        session's ``TimingModel.cost_per_probe_s``.
    kernel_cache:
        Where to memoise the noise-free physics kernel across backends with
        identical content fingerprints (see :mod:`repro.kernelcache`).
        ``True`` (default) uses the process-wide cache, ``False``/``None``
        disables caching for this backend, or pass a
        :class:`~repro.kernelcache.KernelCache` instance.  Only the pure
        layer is cached — the seeded noise field and every time-dependent
        mechanism stay per-backend, and a time-dependent backend (active
        drift or time-dependent noise) bypasses the cache entirely, so
        cached and uncached probes are bit-identical.
    """

    def __init__(
        self,
        device: DotArrayDevice,
        x_voltages: np.ndarray,
        y_voltages: np.ndarray,
        gate_x: int | str = "P1",
        gate_y: int | str = "P2",
        fixed_voltages: np.ndarray | list | None = None,
        noise: NoiseModel | None = None,
        seed: int | np.random.SeedSequence | None = None,
        drift: DeviceDrift | None = None,
        time_dependent_noise: bool = False,
        probe_interval_s: float = 0.05,
        kernel_cache: "KernelCache | bool | None" = True,
    ) -> None:
        self._device = device
        self._xs = np.asarray(x_voltages, dtype=float)
        self._ys = np.asarray(y_voltages, dtype=float)
        if self._xs.ndim != 1 or self._ys.ndim != 1:
            raise MeasurementError("x_voltages and y_voltages must be 1-D arrays")
        if self._xs.size < 2 or self._ys.size < 2:
            raise MeasurementError("measurement grid must be at least 2x2")
        self._gate_x = device.gate_index(gate_x)
        self._gate_y = device.gate_index(gate_y)
        self._fixed = (
            np.zeros(device.n_gates)
            if fixed_voltages is None
            else np.asarray(fixed_voltages, dtype=float).copy()
        )
        if self._fixed.shape != (device.n_gates,):
            raise MeasurementError(
                f"fixed_voltages must have shape ({device.n_gates},)"
            )
        self._noise = noise or NoNoise()
        self._seed = seed
        self._noise_field: np.ndarray | None = None
        if probe_interval_s < 0 or not np.isfinite(probe_interval_s):
            raise MeasurementError("probe_interval_s must be finite and non-negative")
        if time_dependent_noise and probe_interval_s == 0:
            # With a free probe every timestamp is identical, so "noise"
            # would silently collapse to one constant draw.
            raise MeasurementError(
                "time-dependent noise requires a positive probe_interval_s "
                "(a zero-cost probe never advances the clock)"
            )
        self._drift = drift
        self._time_dependent_noise = bool(time_dependent_noise)
        self._probe_interval_s = float(probe_interval_s)
        self._temporal_noise: TimeDependentNoise | None = None
        self._drift_state: DeviceDriftState | None = None
        self._seed_children_cache: tuple[np.random.SeedSequence, ...] | None = None
        self._kernel_cache_opt = kernel_cache
        self._kernel_fp: str | None = None
        self._kernel_hits = 0
        self._kernel_solves = 0

    @property
    def device(self) -> DotArrayDevice:
        """The simulated device."""
        return self._device

    @property
    def gate_x_name(self) -> str:
        """Name of the x-axis (column) gate."""
        return self._device.gate_names[self._gate_x]

    @property
    def gate_y_name(self) -> str:
        """Name of the y-axis (row) gate."""
        return self._device.gate_names[self._gate_y]

    @property
    def x_voltages(self) -> np.ndarray:
        return self._xs

    @property
    def y_voltages(self) -> np.ndarray:
        return self._ys

    @property
    def drift(self) -> DeviceDrift | None:
        """The device-evolution model, if any."""
        return self._drift

    @property
    def is_time_dependent(self) -> bool:
        """Whether probe values depend on the simulated timestamp."""
        drifting = self._drift is not None and not self._drift.is_static
        return drifting or self._time_dependent_noise

    def _noise_grid(self) -> np.ndarray:
        if self._noise_field is None:
            rng = np.random.default_rng(self._seed)
            self._noise_field = self._noise.sample_grid(self.shape, rng)
        return self._noise_field

    def _seed_children(self) -> tuple[np.random.SeedSequence, ...]:
        # Independent child streams for the temporal noise sampler and the
        # drift state, so the two mechanisms never share randomness.  The
        # children are derived by extending the spawn key directly rather
        # than through SeedSequence.spawn(), which would mutate a
        # caller-supplied SeedSequence's child counter and make two backends
        # seeded with the same object diverge.  The large constant keeps the
        # keys clear of anything the caller's own spawn() will hand out.
        if self._seed_children_cache is None:
            root = (
                self._seed
                if isinstance(self._seed, np.random.SeedSequence)
                else np.random.SeedSequence(self._seed)
            )
            self._seed_children_cache = tuple(
                np.random.SeedSequence(
                    entropy=root.entropy, spawn_key=root.spawn_key + (2**31, i)
                )
                for i in (0, 1)
            )
        return self._seed_children_cache

    def _temporal(self) -> TimeDependentNoise:
        if self._temporal_noise is None:
            noise_seed, _ = self._seed_children()
            self._temporal_noise = self._noise.at_times(
                np.random.default_rng(noise_seed), self._probe_interval_s
            )
        return self._temporal_noise

    # ------------------------------------------------------------------
    # Kernel caching (noise-free layer only)
    # ------------------------------------------------------------------
    @property
    def kernel_cache_hits(self) -> int:
        """Pixels this backend served from a shared kernel cache."""
        return self._kernel_hits

    @property
    def kernel_cache_solves(self) -> int:
        """Pixels this backend solved fresh into a shared kernel cache."""
        return self._kernel_solves

    def _kernel_entry(self) -> "KernelCacheEntry | None":
        """The cache entry for this backend's kernel, or ``None`` to bypass.

        Time-dependent backends (active drift, time-dependent noise) always
        bypass: their pure values depend on the probe timestamp and a cached
        grid would go stale the moment the device evolves.
        """
        if self.is_time_dependent:
            return None
        opt = self._kernel_cache_opt
        if opt is False or opt is None:
            return None
        cache = default_kernel_cache() if opt is True else opt
        if not cache.enabled:
            return None
        if self._kernel_fp is None:
            self._kernel_fp = kernel_fingerprint(
                self._device,
                self._xs,
                self._ys,
                self._gate_x,
                self._gate_y,
                self._fixed,
            )
        return cache.entry(self._kernel_fp, self.shape)

    def _pure_currents(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        points: np.ndarray,
        detuning_offset_mv: np.ndarray | float,
    ) -> np.ndarray:
        """Noise-free currents, served through the kernel cache when pure."""
        entry = self._kernel_entry()
        if entry is None:
            return self._device.sensor_currents(
                points, detuning_offset_mv=detuning_offset_mv
            )
        before = entry.n_pixel_solves
        values = entry.fetch(
            rows, cols, lambda idx: self._device.sensor_currents(points[idx])
        )
        solved = entry.n_pixel_solves - before
        self._kernel_solves += solved
        self._kernel_hits += rows.size - solved
        return values

    def _drifting(self) -> DeviceDriftState:
        assert self._drift is not None
        if self._drift_state is None:
            _, drift_seed = self._seed_children()
            self._drift_state = self._drift.at_times(
                np.random.default_rng(drift_seed)
            )
        return self._drift_state

    def current(self, row: int, col: int, time_s: float | None = None) -> float:
        self.validate_pixel(row, col)
        times = None if time_s is None else np.array([float(time_s)])
        return float(self.currents(np.array([row]), np.array([col]), times)[0])

    def currents(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        times_s: np.ndarray | None = None,
    ) -> np.ndarray:
        """Batched physics evaluation of an arbitrary set of pixels.

        Builds the gate-voltage points, solves all ground states through the
        solver's vectorised lattice kernel, converts them to sensor currents
        in one evaluation, and adds the noise — either the pixel's share of
        the seeded static field, or (for time-dependent noise) the temporal
        sampler evaluated at each probe's timestamp.  Device drift enters as
        a per-probe sensor-detuning offset and swept-gate scale.  Every term
        is an elementwise function of (pixel, timestamp), so batched and
        scalar probes agree bit-for-bit regardless of batch splitting.
        """
        rows, cols = self.validate_pixels(rows, cols)
        times = self.validate_times(times_s, rows.size)
        points = np.tile(self._fixed, (rows.size, 1))
        points[:, self._gate_x] = self._xs[cols]
        points[:, self._gate_y] = self._ys[rows]
        detuning_offset_mv: np.ndarray | float = 0.0
        if self._drift is not None and not self._drift.is_static and rows.size:
            state = self._drifting()
            scale = state.gate_scale(times)
            points[:, self._gate_x] *= scale
            points[:, self._gate_y] *= scale
            detuning_offset_mv = state.detuning_offset_mv(times)
        values = self._pure_currents(rows, cols, points, detuning_offset_mv)
        if self._time_dependent_noise:
            return values + self._temporal().sample_at(times)
        return values + self._noise_grid()[rows, cols]


class ChargeSensorMeter:
    """The paper's ``getCurrent`` with dwell-time accounting and a probe log.

    Parameters
    ----------
    backend:
        Where pixel values come from.
    clock:
        Virtual clock charged for every physical probe; a fresh paper-default
        clock is created when omitted.
    cache:
        When true (default), re-requesting an already measured pixel returns
        the stored value without charging dwell time — this is how an
        automation script would behave, and it is what makes the probe counts
        comparable to the paper's "number of data points probed".  The meter
        owns this cache; backends stay stateless value sources.
    max_probes:
        Optional hard budget on physical probes; exceeding it raises
        :class:`ProbeBudgetExceededError`.
    retry:
        Optional :class:`~repro.instrument.resilience.ProbeRetryPolicy`
        governing how probes against a fault-injecting backend (one
        exposing ``plan_batch``, i.e.
        :class:`~repro.faults.backend.FaultyBackend`) are retried.  With a
        fault-capable backend and no policy, the first fault fails the
        probe; with an ordinary backend the policy is inert.  Retried
        attempts, backoffs, and tolerated stalls all charge the virtual
        clock but never the probe budget or the log — only the attempt
        that finally returns a value is a probe.
    """

    def __init__(
        self,
        backend: MeasurementBackend,
        clock: VirtualClock | None = None,
        cache: bool = True,
        max_probes: int | None = None,
        retry: ProbeRetryPolicy | None = None,
    ) -> None:
        self._backend = backend
        self._clock = clock or VirtualClock(TimingModel.paper_default())
        self._cache_enabled = bool(cache)
        self._max_probes = max_probes
        self._log = ProbeLog()
        self._measured = np.zeros(backend.shape, dtype=bool)
        self._value_grid = np.zeros(backend.shape, dtype=float)
        self._n_probes = 0
        # Resilience state.  The fault-free code paths below are the exact
        # pre-fault-injection ones — the resilient twins are only entered
        # for a backend that can plan faults, so a clean meter stays
        # bit-identical (and overhead-free) by construction.
        self._retry = retry
        self._fault_capable = hasattr(backend, "plan_batch")
        self._n_probe_retries = 0
        self._n_fault_events = 0
        self._n_probes_exhausted = 0
        self._fault_delay_s = 0.0
        self._consecutive_failures = 0
        self._breaker_open = False

    # ------------------------------------------------------------------
    @property
    def backend(self) -> MeasurementBackend:
        """The measurement backend."""
        return self._backend

    @property
    def clock(self) -> VirtualClock:
        """The virtual clock."""
        return self._clock

    @property
    def log(self) -> ProbeLog:
        """The probe log."""
        return self._log

    @property
    def shape(self) -> tuple[int, int]:
        """Grid shape."""
        return self._backend.shape

    @property
    def x_voltages(self) -> np.ndarray:
        """Column voltages."""
        return self._backend.x_voltages

    @property
    def y_voltages(self) -> np.ndarray:
        """Row voltages."""
        return self._backend.y_voltages

    @property
    def n_probes(self) -> int:
        """Number of physically measured (non-cached) pixels."""
        return self._n_probes

    @property
    def n_requests(self) -> int:
        """Number of measurement requests including cache hits."""
        return self._log.n_requests

    @property
    def probe_fraction(self) -> float:
        """Fraction of the grid that has been physically measured."""
        return self.n_probes / float(self._backend.n_pixels)

    @property
    def elapsed_s(self) -> float:
        """Simulated experiment time spent so far."""
        return self._clock.elapsed_s

    @property
    def n_cache_hits(self) -> int:
        """Number of requests answered from the cache rather than measured."""
        return self._log.n_cached

    @property
    def kernel_cache_hits(self) -> int:
        """Pixels served from the cross-job kernel cache (0 if inapplicable).

        Unwraps a fault-injecting backend, whose clean values come from the
        wrapped device backend.
        """
        backend = getattr(self._backend, "inner", self._backend)
        return int(getattr(backend, "kernel_cache_hits", 0))

    @property
    def kernel_cache_solves(self) -> int:
        """Pixels solved fresh into the cross-job kernel cache."""
        backend = getattr(self._backend, "inner", self._backend)
        return int(getattr(backend, "kernel_cache_solves", 0))

    def snapshot(self) -> MeterSnapshot:
        """Freeze the meter's cost counters (probes, requests, hits, time).

        Diffing two snapshots (:meth:`MeterSnapshot.delta`) yields the exact
        cost of the code that ran between them — the primitive the pipeline
        layer uses to charge each stage for what it actually probed.
        """
        return MeterSnapshot(
            n_probes=self._n_probes,
            n_requests=self._log.n_requests,
            n_cache_hits=self._log.n_cached,
            elapsed_s=self._clock.elapsed_s,
        )

    # ------------------------------------------------------------------
    # Fault/resilience telemetry
    # ------------------------------------------------------------------
    @property
    def retry(self) -> ProbeRetryPolicy | None:
        """The probe retry policy, if one was configured."""
        return self._retry

    @property
    def n_probe_retries(self) -> int:
        """Number of retried probe attempts (fault recoveries)."""
        return self._n_probe_retries

    @property
    def n_fault_events(self) -> int:
        """Number of failed probe attempts (errors and timeouts)."""
        return self._n_fault_events

    @property
    def n_probes_exhausted(self) -> int:
        """Number of probes that failed every allowed attempt."""
        return self._n_probes_exhausted

    @property
    def fault_delay_s(self) -> float:
        """Simulated seconds lost to faults: stalls, backoffs, dead attempts."""
        return self._fault_delay_s

    @property
    def breaker_open(self) -> bool:
        """Whether the circuit breaker has tripped (reset() re-arms it)."""
        return self._breaker_open

    # ------------------------------------------------------------------
    # Resilient probing against a fault-capable backend
    # ------------------------------------------------------------------
    def _resilient_probe(self, row: int, col: int) -> tuple[float, float]:
        """One physical probe through the retry loop.

        Returns ``(value, completion_time)``.  Every attempt charges a full
        probe cost; backoffs and tolerated stalls charge the clock too.  A
        retry therefore samples a *later* timestamp — and, because fault
        draws are keyed by timestamp, fresh fault luck — exactly like a
        retry on real hardware.  Raises a typed
        :class:`~repro.exceptions.InstrumentFault` when attempts are
        exhausted or the circuit breaker trips.
        """
        policy = self._retry or ProbeRetryPolicy.no_retry()
        if self._breaker_open:
            raise CircuitBreakerOpenError(
                "circuit breaker is open; reset() the meter to re-arm it"
            )
        rows = np.array([row])
        cols = np.array([col])
        cost = self._clock.timing.cost_per_probe_s
        backoff = policy.backoff_s
        last_error: Exception | None = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                self._n_probe_retries += 1
                if backoff > 0:
                    self._clock.advance(backoff)
                    self._fault_delay_s += backoff
                    backoff *= policy.backoff_factor
            self._clock.charge_probe()
            scheduled = self._clock.elapsed_s
            plan = self._backend.plan_batch(rows, cols, np.array([scheduled]))
            disruption = plan.disruption
            if disruption is None:
                self._consecutive_failures = 0
                return float(plan.values[0]), scheduled
            tolerated_stall = disruption.error is None and (
                policy.timeout_s is None or disruption.stall_s <= policy.timeout_s
            )
            if tolerated_stall:
                # The read is late but lands: wait out the hang, keep the
                # value the backend drew at the scheduled instant.
                self._clock.advance(disruption.stall_s)
                self._fault_delay_s += disruption.stall_s
                self._consecutive_failures = 0
                return float(plan.values[0]), self._clock.elapsed_s
            # Failed attempt: the dwell bought nothing.
            self._n_fault_events += 1
            self._fault_delay_s += cost
            if disruption.error is not None:
                last_error = disruption.error
            else:
                self._clock.advance(policy.timeout_s)
                self._fault_delay_s += policy.timeout_s
                last_error = ProbeTimeoutError(
                    f"probe ({row}, {col}) stalled {disruption.stall_s:.3f}s, "
                    f"over the {policy.timeout_s:.3f}s timeout budget"
                )
            self._consecutive_failures += 1
            if (
                policy.breaker_failures
                and self._consecutive_failures >= policy.breaker_failures
            ):
                self._breaker_open = True
                raise CircuitBreakerOpenError(
                    f"circuit breaker open after {self._consecutive_failures} "
                    f"consecutive probe failures (last: {last_error})"
                )
        self._n_probes_exhausted += 1
        raise last_error

    def _get_current_resilient(self, row: int, col: int) -> float:
        """Scalar measurement against a fault-capable backend."""
        self._backend.validate_pixel(row, col)
        vx, vy = self._backend.voltage_at(row, col)
        if self._cache_enabled and self._measured[row, col]:
            value = float(self._value_grid[row, col])
            self._log.append_probe(
                row, col, vx, vy, value, self._clock.elapsed_s, True
            )
            return value
        if self._max_probes is not None and self._n_probes >= self._max_probes:
            raise ProbeBudgetExceededError(
                f"probe budget of {self._max_probes} points exhausted"
            )
        value, time_s = self._resilient_probe(row, col)
        if not self._measured[row, col]:
            self._n_probes += 1
        self._measured[row, col] = True
        self._value_grid[row, col] = value
        self._log.append_probe(row, col, vx, vy, value, time_s, False)
        return value

    def _get_currents_resilient(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        physical: np.ndarray,
        new_unique: np.ndarray,
        stop: int,
        n: int,
    ) -> np.ndarray:
        """Batched measurement against a fault-capable backend.

        Optimistic vectorisation: preview the timestamps the whole pending
        segment of physical probes *would* get, plan it in one backend
        call, commit the fault-free prefix wholesale (bit-identical clock
        arithmetic via :meth:`VirtualClock.preview_probes` /
        ``charge_probes``), then push only the disrupted probe through the
        scalar retry loop — re-planning it at the same scheduled timestamp
        reproduces the same fault, so scalar and batched paths agree
        bit-for-bit.  A probe that exhausts its retries commits everything
        measured before it (cache hits included) and re-raises, mirroring
        the mid-batch budget semantics.
        """
        committed_rows = rows[:stop]
        committed_cols = cols[:stop]
        committed_physical = physical[:stop]
        probe_positions = np.flatnonzero(committed_physical)
        probe_rows = committed_rows[committed_physical]
        probe_cols = committed_cols[committed_physical]
        n_physical = int(probe_rows.size)
        probe_values = np.empty(n_physical, dtype=float)
        probe_times = np.empty(n_physical, dtype=float)
        base_elapsed = self._clock.elapsed_s
        done = 0
        failure: Exception | None = None
        while done < n_physical:
            segment = slice(done, n_physical)
            tentative = self._clock.preview_probes(n_physical - done)
            plan = self._backend.plan_batch(
                probe_rows[segment], probe_cols[segment], tentative
            )
            disruption = plan.disruption
            clean = (n_physical - done) if disruption is None else disruption.index
            if clean:
                times = self._clock.charge_probes(clean)
                probe_values[done : done + clean] = plan.values[:clean]
                probe_times[done : done + clean] = times
                done += clean
            if disruption is None:
                continue
            try:
                value, time_s = self._resilient_probe(
                    int(probe_rows[done]), int(probe_cols[done])
                )
            except InstrumentFault as exc:
                failure = exc
                break
            probe_values[done] = value
            probe_times[done] = time_s
            done += 1
        # Requests before the first uncommitted physical probe are final.
        request_stop = stop if failure is None else int(probe_positions[done])
        final_rows = committed_rows[:request_stop]
        final_cols = committed_cols[:request_stop]
        final_physical = committed_physical[:request_stop]
        values = np.empty(request_stop, dtype=float)
        if done:
            measured_values = probe_values[:done]
            values[final_physical] = measured_values
            self._value_grid[probe_rows[:done], probe_cols[:done]] = measured_values
            self._measured[probe_rows[:done], probe_cols[:done]] = True
        from_cache = ~final_physical
        if np.any(from_cache):
            values[from_cache] = self._value_grid[
                final_rows[from_cache], final_cols[from_cache]
            ]
        self._n_probes += int(np.count_nonzero(new_unique[:request_stop]))
        times = np.concatenate(([base_elapsed], probe_times[:done]))[
            np.cumsum(final_physical)
        ]
        self._log.extend(
            final_rows,
            final_cols,
            self._backend.x_voltages[final_cols].astype(float),
            self._backend.y_voltages[final_rows].astype(float),
            values,
            times,
            from_cache,
        )
        if failure is not None:
            raise failure
        if stop < n:
            raise ProbeBudgetExceededError(
                f"probe budget of {self._max_probes} points exhausted"
            )
        return values

    # ------------------------------------------------------------------
    def get_current(self, row: int, col: int) -> float:
        """Measure the pixel at ``(row, col)`` — the paper's Algorithm 1."""
        if self._fault_capable:
            return self._get_current_resilient(row, col)
        self._backend.validate_pixel(row, col)
        vx, vy = self._backend.voltage_at(row, col)
        if self._cache_enabled and self._measured[row, col]:
            value = float(self._value_grid[row, col])
            self._log.append_probe(
                row, col, vx, vy, value, self._clock.elapsed_s, True
            )
            return value
        if self._max_probes is not None and self._n_probes >= self._max_probes:
            raise ProbeBudgetExceededError(
                f"probe budget of {self._max_probes} points exhausted"
            )
        # The clock is charged first so the probe's timestamp — which
        # time-dependent backends measure *at* — is the elapsed time after
        # its dwell, matching the batched path's charge_probes readings.
        self._clock.charge_probe()
        value = self._backend.current(row, col, time_s=self._clock.elapsed_s)
        if not self._measured[row, col]:
            self._n_probes += 1
        self._measured[row, col] = True
        self._value_grid[row, col] = value
        self._log.append_probe(row, col, vx, vy, value, self._clock.elapsed_s, False)
        return value

    def get_currents(self, rows: np.ndarray | list, cols: np.ndarray | list) -> np.ndarray:
        """Measure a whole batch of pixels — the vectorised Algorithm 1.

        Equivalent, request by request, to calling :meth:`get_current` in a
        loop — identical values, cache hits, probe counts, clock charges, and
        log entries — but the cache split, the physics evaluation, the clock,
        and the log append are all array operations, so large acquisitions
        cost one vectorised pass instead of per-pixel Python overhead.

        Duplicate pixels within a batch behave exactly like repeated scalar
        requests: the first occurrence is a physical probe and later ones are
        cache hits (when caching is enabled).  When the probe budget runs out
        mid-batch, every request before the violating one is committed (as a
        sequential loop would have) and :class:`ProbeBudgetExceededError` is
        raised.  Unlike the sequential loop, all pixels are validated
        up front before anything is measured.

        Parameters
        ----------
        rows, cols:
            Integer pixel indices of matching shape.

        Returns
        -------
        numpy.ndarray
            Measured currents (nA), one per request, in request order.
        """
        rows, cols = self._backend.validate_pixels(rows, cols)
        n = rows.size
        if n == 0:
            return np.zeros(0)
        # Split requests into physical probes and cache hits.  "Fresh" pixels
        # have never been measured; only the first in-batch occurrence of a
        # fresh pixel is physical when the cache is enabled.
        fresh = ~self._measured[rows, cols]
        new_unique = np.zeros(n, dtype=bool)
        fresh_indices = np.flatnonzero(fresh)
        if fresh_indices.size:
            keys = rows[fresh_indices] * self._backend.shape[1] + cols[fresh_indices]
            _, first_seen = np.unique(keys, return_index=True)
            new_unique[fresh_indices[first_seen]] = True
        physical = new_unique if self._cache_enabled else np.ones(n, dtype=bool)
        # Budget enforcement with sequential semantics: the number of unique
        # measured pixels before request i is n_probes + (new uniques in
        # [0, i)); the first physical request that would exceed the budget
        # stops the batch there, after committing everything before it.
        stop = n
        if self._max_probes is not None:
            unique_before = np.cumsum(new_unique) - new_unique
            violating = (self._n_probes + unique_before >= self._max_probes) & physical
            hits = np.flatnonzero(violating)
            if hits.size:
                stop = int(hits[0])
        if self._fault_capable:
            return self._get_currents_resilient(rows, cols, physical, new_unique, stop, n)
        committed_rows = rows[:stop]
        committed_cols = cols[:stop]
        committed_physical = physical[:stop]
        values = np.empty(stop, dtype=float)
        probe_rows = committed_rows[committed_physical]
        probe_cols = committed_cols[committed_physical]
        # Each physical probe charges the clock before it is evaluated, so
        # time-dependent backends see the same per-probe timestamps (elapsed
        # time after each dwell) the scalar loop produces.
        base_elapsed = self._clock.elapsed_s
        probe_times = self._clock.charge_probes(int(probe_rows.size))
        if probe_rows.size:
            measured_values = self._backend.currents(
                probe_rows, probe_cols, times_s=probe_times
            )
            values[committed_physical] = measured_values
            self._value_grid[probe_rows, probe_cols] = measured_values
            self._measured[probe_rows, probe_cols] = True
        from_cache = ~committed_physical
        if np.any(from_cache):
            values[from_cache] = self._value_grid[
                committed_rows[from_cache], committed_cols[from_cache]
            ]
        self._n_probes += int(np.count_nonzero(new_unique[:stop]))
        # A request's timestamp is the elapsed time after the last physical
        # probe at or before it (cache hits cost nothing).
        times = np.concatenate(([base_elapsed], probe_times))[
            np.cumsum(committed_physical)
        ]
        self._log.extend(
            committed_rows,
            committed_cols,
            self._backend.x_voltages[committed_cols].astype(float),
            self._backend.y_voltages[committed_rows].astype(float),
            values,
            times,
            from_cache,
        )
        if stop < n:
            raise ProbeBudgetExceededError(
                f"probe budget of {self._max_probes} points exhausted"
            )
        return values

    def get_current_at_voltage(self, vx: float, vy: float) -> float:
        """Measure the pixel nearest to a voltage point."""
        row, col = self._backend.pixel_at(vx, vy)
        return self.get_current(row, col)

    def acquire_full_grid(self) -> np.ndarray:
        """Measure every pixel (what the Hough baseline does) and return the image.

        Served through :meth:`get_currents` in row-major request order, so a
        full 100x100 acquisition is one batched physics evaluation instead of
        10,000 scalar probes.
        """
        rows, cols = self._backend.shape
        row_indices = np.repeat(np.arange(rows), cols)
        col_indices = np.tile(np.arange(cols), rows)
        return self.get_currents(row_indices, col_indices).reshape(rows, cols)

    def measured_image(self, fill_value: float = np.nan) -> np.ndarray:
        """Image of measured pixel values with unmeasured pixels set to ``fill_value``."""
        image = np.full(self._backend.shape, fill_value, dtype=float)
        image[self._measured] = self._value_grid[self._measured]
        return image

    def reset(self) -> None:
        """Clear the probe log, cache, clock, fault counters, and breaker."""
        self._log = ProbeLog()
        self._measured.fill(False)
        self._n_probes = 0
        self._clock.reset()
        self._n_probe_retries = 0
        self._n_fault_events = 0
        self._n_probes_exhausted = 0
        self._fault_delay_s = 0.0
        self._consecutive_failures = 0
        self._breaker_open = False
