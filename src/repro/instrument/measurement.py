"""Simulated charge-sensor measurement: the paper's ``getCurrent`` (Alg. 1).

The extraction algorithms never see the device physics directly; they call a
measurement object that

1. sets the two plunger-gate voltages,
2. waits the dwell time (charged to a :class:`~repro.instrument.timing.VirtualClock`),
3. returns the charge-sensor current.

Two backends supply the current value:

* :class:`DatasetBackend` replays a pre-recorded (or pre-simulated)
  :class:`~repro.physics.csd.ChargeStabilityDiagram`, exactly as the paper
  replays the qflow data — a probe returns the pixel nearest to the requested
  voltages.
* :class:`DeviceBackend` evaluates the physics model on demand over a
  configured voltage grid, optionally adding a reproducible noise field.

:class:`ChargeSensorMeter` wraps a backend with dwell-time accounting, a probe
log (used to reproduce Figure 7), optional per-pixel caching (re-requesting an
already measured pixel costs nothing, mirroring how an automation script keeps
values it has already paid for), and an optional probe budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import MeasurementError, ProbeBudgetExceededError
from ..physics.csd import ChargeStabilityDiagram
from ..physics.dot_array import DotArrayDevice
from ..physics.noise import NoiseModel, NoNoise
from .timing import TimingModel, VirtualClock


@dataclass(frozen=True)
class ProbeRecord:
    """One measured voltage point."""

    row: int
    col: int
    voltage_x: float
    voltage_y: float
    current_na: float
    time_s: float
    cached: bool = False


@dataclass
class ProbeLog:
    """Ordered log of every measurement request."""

    records: list[ProbeRecord] = field(default_factory=list)

    def append(self, record: ProbeRecord) -> None:
        """Append a record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def n_requests(self) -> int:
        """Total number of requests, including cache hits."""
        return len(self.records)

    @property
    def n_unique_pixels(self) -> int:
        """Number of distinct pixels that were physically measured."""
        return len({(r.row, r.col) for r in self.records if not r.cached})

    def unique_pixels(self) -> list[tuple[int, int]]:
        """Distinct physically measured pixels in first-probe order."""
        seen: set[tuple[int, int]] = set()
        ordered: list[tuple[int, int]] = []
        for record in self.records:
            if record.cached:
                continue
            key = (record.row, record.col)
            if key not in seen:
                seen.add(key)
                ordered.append(key)
        return ordered

    def as_arrays(self) -> dict[str, np.ndarray]:
        """Columns of the log as numpy arrays (for export / plotting)."""
        if not self.records:
            empty = np.zeros(0)
            return {
                "row": empty.astype(int),
                "col": empty.astype(int),
                "voltage_x": empty,
                "voltage_y": empty,
                "current_na": empty,
                "time_s": empty,
                "cached": empty.astype(bool),
            }
        return {
            "row": np.array([r.row for r in self.records], dtype=int),
            "col": np.array([r.col for r in self.records], dtype=int),
            "voltage_x": np.array([r.voltage_x for r in self.records]),
            "voltage_y": np.array([r.voltage_y for r in self.records]),
            "current_na": np.array([r.current_na for r in self.records]),
            "time_s": np.array([r.time_s for r in self.records]),
            "cached": np.array([r.cached for r in self.records], dtype=bool),
        }

    def probe_mask(self, shape: tuple[int, int]) -> np.ndarray:
        """Boolean image of which pixels were physically measured."""
        mask = np.zeros(shape, dtype=bool)
        for row, col in self.unique_pixels():
            if 0 <= row < shape[0] and 0 <= col < shape[1]:
                mask[row, col] = True
        return mask


class MeasurementBackend:
    """Source of noise-inclusive sensor currents over a fixed voltage grid."""

    @property
    def x_voltages(self) -> np.ndarray:
        """Column voltages of the grid."""
        raise NotImplementedError

    @property
    def y_voltages(self) -> np.ndarray:
        """Row voltages of the grid."""
        raise NotImplementedError

    def current(self, row: int, col: int) -> float:
        """Sensor current (nA) of the pixel at ``(row, col)``."""
        raise NotImplementedError

    # Convenience shared by both backends -------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """``(n_rows, n_cols)`` of the measurement grid."""
        return self.y_voltages.size, self.x_voltages.size

    @property
    def n_pixels(self) -> int:
        """Total number of grid pixels."""
        return int(self.shape[0] * self.shape[1])

    def voltage_at(self, row: int, col: int) -> tuple[float, float]:
        """Voltages ``(vx, vy)`` of a pixel."""
        return float(self.x_voltages[col]), float(self.y_voltages[row])

    def pixel_at(self, vx: float, vy: float) -> tuple[int, int]:
        """Nearest pixel ``(row, col)`` to a voltage point."""
        col = int(np.argmin(np.abs(self.x_voltages - vx)))
        row = int(np.argmin(np.abs(self.y_voltages - vy)))
        return row, col

    def validate_pixel(self, row: int, col: int) -> None:
        """Raise :class:`MeasurementError` if the pixel is off-grid."""
        rows, cols = self.shape
        if not (0 <= row < rows and 0 <= col < cols):
            raise MeasurementError(
                f"pixel ({row}, {col}) outside the {rows}x{cols} measurement grid"
            )


class DatasetBackend(MeasurementBackend):
    """Replay a recorded/simulated charge-stability diagram."""

    def __init__(self, csd: ChargeStabilityDiagram) -> None:
        self._csd = csd

    @property
    def csd(self) -> ChargeStabilityDiagram:
        """The replayed diagram."""
        return self._csd

    @property
    def x_voltages(self) -> np.ndarray:
        return self._csd.x_voltages

    @property
    def y_voltages(self) -> np.ndarray:
        return self._csd.y_voltages

    def current(self, row: int, col: int) -> float:
        self.validate_pixel(row, col)
        return float(self._csd.data[row, col])


class DeviceBackend(MeasurementBackend):
    """Evaluate the device physics on demand over a configured grid."""

    def __init__(
        self,
        device: DotArrayDevice,
        x_voltages: np.ndarray,
        y_voltages: np.ndarray,
        gate_x: int | str = "P1",
        gate_y: int | str = "P2",
        fixed_voltages: np.ndarray | list | None = None,
        noise: NoiseModel | None = None,
        seed: int | np.random.SeedSequence | None = None,
    ) -> None:
        self._device = device
        self._xs = np.asarray(x_voltages, dtype=float)
        self._ys = np.asarray(y_voltages, dtype=float)
        if self._xs.ndim != 1 or self._ys.ndim != 1:
            raise MeasurementError("x_voltages and y_voltages must be 1-D arrays")
        if self._xs.size < 2 or self._ys.size < 2:
            raise MeasurementError("measurement grid must be at least 2x2")
        self._gate_x = device.gate_index(gate_x)
        self._gate_y = device.gate_index(gate_y)
        self._fixed = (
            np.zeros(device.n_gates)
            if fixed_voltages is None
            else np.asarray(fixed_voltages, dtype=float).copy()
        )
        if self._fixed.shape != (device.n_gates,):
            raise MeasurementError(
                f"fixed_voltages must have shape ({device.n_gates},)"
            )
        self._noise = noise or NoNoise()
        self._seed = seed
        self._noise_field: np.ndarray | None = None
        self._cache: dict[tuple[int, int], float] = {}

    @property
    def device(self) -> DotArrayDevice:
        """The simulated device."""
        return self._device

    @property
    def gate_x_name(self) -> str:
        """Name of the x-axis (column) gate."""
        return self._device.gate_names[self._gate_x]

    @property
    def gate_y_name(self) -> str:
        """Name of the y-axis (row) gate."""
        return self._device.gate_names[self._gate_y]

    @property
    def x_voltages(self) -> np.ndarray:
        return self._xs

    @property
    def y_voltages(self) -> np.ndarray:
        return self._ys

    def _noise_at(self, row: int, col: int) -> float:
        if self._noise_field is None:
            rng = np.random.default_rng(self._seed)
            self._noise_field = self._noise.sample_grid(self.shape, rng)
        return float(self._noise_field[row, col])

    def current(self, row: int, col: int) -> float:
        self.validate_pixel(row, col)
        key = (row, col)
        if key not in self._cache:
            vg = self._fixed.copy()
            vg[self._gate_x] = self._xs[col]
            vg[self._gate_y] = self._ys[row]
            self._cache[key] = self._device.sensor_current(vg) + self._noise_at(row, col)
        return self._cache[key]


class ChargeSensorMeter:
    """The paper's ``getCurrent`` with dwell-time accounting and a probe log.

    Parameters
    ----------
    backend:
        Where pixel values come from.
    clock:
        Virtual clock charged for every physical probe; a fresh paper-default
        clock is created when omitted.
    cache:
        When true (default), re-requesting an already measured pixel returns
        the stored value without charging dwell time — this is how an
        automation script would behave, and it is what makes the probe counts
        comparable to the paper's "number of data points probed".
    max_probes:
        Optional hard budget on physical probes; exceeding it raises
        :class:`ProbeBudgetExceededError`.
    """

    def __init__(
        self,
        backend: MeasurementBackend,
        clock: VirtualClock | None = None,
        cache: bool = True,
        max_probes: int | None = None,
    ) -> None:
        self._backend = backend
        self._clock = clock or VirtualClock(TimingModel.paper_default())
        self._cache_enabled = bool(cache)
        self._max_probes = max_probes
        self._log = ProbeLog()
        self._values: dict[tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    @property
    def backend(self) -> MeasurementBackend:
        """The measurement backend."""
        return self._backend

    @property
    def clock(self) -> VirtualClock:
        """The virtual clock."""
        return self._clock

    @property
    def log(self) -> ProbeLog:
        """The probe log."""
        return self._log

    @property
    def shape(self) -> tuple[int, int]:
        """Grid shape."""
        return self._backend.shape

    @property
    def x_voltages(self) -> np.ndarray:
        """Column voltages."""
        return self._backend.x_voltages

    @property
    def y_voltages(self) -> np.ndarray:
        """Row voltages."""
        return self._backend.y_voltages

    @property
    def n_probes(self) -> int:
        """Number of physically measured (non-cached) pixels."""
        return len(self._values)

    @property
    def n_requests(self) -> int:
        """Number of measurement requests including cache hits."""
        return self._log.n_requests

    @property
    def probe_fraction(self) -> float:
        """Fraction of the grid that has been physically measured."""
        return self.n_probes / float(self._backend.n_pixels)

    @property
    def elapsed_s(self) -> float:
        """Simulated experiment time spent so far."""
        return self._clock.elapsed_s

    # ------------------------------------------------------------------
    def get_current(self, row: int, col: int) -> float:
        """Measure the pixel at ``(row, col)`` — the paper's Algorithm 1."""
        self._backend.validate_pixel(row, col)
        key = (row, col)
        vx, vy = self._backend.voltage_at(row, col)
        if self._cache_enabled and key in self._values:
            value = self._values[key]
            self._log.append(
                ProbeRecord(
                    row=row,
                    col=col,
                    voltage_x=vx,
                    voltage_y=vy,
                    current_na=value,
                    time_s=self._clock.elapsed_s,
                    cached=True,
                )
            )
            return value
        if self._max_probes is not None and len(self._values) >= self._max_probes:
            raise ProbeBudgetExceededError(
                f"probe budget of {self._max_probes} points exhausted"
            )
        self._clock.charge_probe()
        value = self._backend.current(row, col)
        self._values[key] = value
        self._log.append(
            ProbeRecord(
                row=row,
                col=col,
                voltage_x=vx,
                voltage_y=vy,
                current_na=value,
                time_s=self._clock.elapsed_s,
                cached=False,
            )
        )
        return value

    def get_current_at_voltage(self, vx: float, vy: float) -> float:
        """Measure the pixel nearest to a voltage point."""
        row, col = self._backend.pixel_at(vx, vy)
        return self.get_current(row, col)

    def acquire_full_grid(self) -> np.ndarray:
        """Measure every pixel (what the Hough baseline does) and return the image."""
        rows, cols = self._backend.shape
        image = np.zeros((rows, cols), dtype=float)
        for row in range(rows):
            for col in range(cols):
                image[row, col] = self.get_current(row, col)
        return image

    def measured_image(self, fill_value: float = np.nan) -> np.ndarray:
        """Image of measured pixel values with unmeasured pixels set to ``fill_value``."""
        rows, cols = self._backend.shape
        image = np.full((rows, cols), fill_value, dtype=float)
        for (row, col), value in self._values.items():
            image[row, col] = value
        return image

    def reset(self) -> None:
        """Clear the probe log, cache, and clock."""
        self._log = ProbeLog()
        self._values = {}
        self._clock.reset()
