"""Instrument simulation: DACs, dwell-time accounting, and the probe log.

This subpackage reproduces the *cost model* of the real experiment: every
probed voltage point takes a dwell time (50 ms in the paper), so runtime is
dominated by how many points an algorithm asks for, not by computation.
"""

from .measurement import (
    ChargeSensorMeter,
    DatasetBackend,
    DeviceBackend,
    MeasurementBackend,
    MeterSnapshot,
    ProbeLog,
    ProbeRecord,
)
from .resilience import ProbeRetryPolicy
from .session import ExperimentSession, SessionFactory, SessionSummary
from .timing import TimingModel, VirtualClock
from .voltage_source import ChannelSpec, VoltageSource

__all__ = [
    "ChargeSensorMeter",
    "DatasetBackend",
    "DeviceBackend",
    "MeasurementBackend",
    "MeterSnapshot",
    "ProbeLog",
    "ProbeRecord",
    "ProbeRetryPolicy",
    "ExperimentSession",
    "SessionFactory",
    "SessionSummary",
    "TimingModel",
    "VirtualClock",
    "ChannelSpec",
    "VoltageSource",
]
