"""Virtual experiment clock.

Every probed voltage point on a real device costs a *dwell time* — the paper
uses 50 ms, the typical settling time of the heavily filtered DC lines — plus
a small per-point overhead for setting the DACs and digitising the sensor
current.  Those delays, not the computation, dominate virtual gate extraction,
so reproducing the paper's Table 1 runtimes requires an explicit cost model.

:class:`VirtualClock` accumulates simulated time without sleeping (the
default) or, when ``realtime=True``, actually sleeps so the library can also
be exercised end-to-end with genuine wall-clock delays.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class TimingModel:
    """Per-operation costs of the simulated experiment, in seconds.

    Attributes
    ----------
    dwell_time_s:
        Wait between setting gate voltages and sampling the sensor current
        (50 ms in the paper, Section 5.1).
    set_voltage_s:
        DAC update cost per probed point.
    readout_s:
        Digitiser integration time per probed point.
    """

    dwell_time_s: float = 0.050
    set_voltage_s: float = 0.0
    readout_s: float = 0.0

    def __post_init__(self) -> None:
        if self.dwell_time_s < 0 or self.set_voltage_s < 0 or self.readout_s < 0:
            raise ConfigurationError("timing costs must be non-negative")

    @property
    def cost_per_probe_s(self) -> float:
        """Total simulated cost of one probed voltage point."""
        return self.dwell_time_s + self.set_voltage_s + self.readout_s

    @classmethod
    def paper_default(cls) -> "TimingModel":
        """The timing model used in the paper's evaluation (50 ms dwell)."""
        return cls(dwell_time_s=0.050, set_voltage_s=0.0, readout_s=0.0)


class VirtualClock:
    """Accumulates simulated experiment time (optionally sleeping for real)."""

    def __init__(self, timing: TimingModel | None = None, realtime: bool = False) -> None:
        self._timing = timing or TimingModel.paper_default()
        self._realtime = bool(realtime)
        self._elapsed_s = 0.0
        self._started_wall = time.monotonic()  # repro: allow[wall-clock] -- anchors the wall_time_s telemetry property; simulated time never reads it

    @property
    def timing(self) -> TimingModel:
        """The per-operation cost model."""
        return self._timing

    @property
    def realtime(self) -> bool:
        """Whether the clock actually sleeps."""
        return self._realtime

    @property
    def elapsed_s(self) -> float:
        """Total simulated experiment time accumulated so far, in seconds."""
        return self._elapsed_s

    @property
    def wall_time_s(self) -> float:
        """Real wall-clock time since the clock was created."""
        return time.monotonic() - self._started_wall  # repro: allow[wall-clock] -- wall_time_s is profiling telemetry, not simulated time

    def advance(self, seconds: float) -> None:
        """Advance the simulated clock by an arbitrary amount."""
        if seconds < 0:
            raise ConfigurationError("cannot advance the clock by a negative amount")
        self._elapsed_s += seconds
        if self._realtime and seconds > 0:
            time.sleep(seconds)  # repro: allow[wall-clock] -- realtime=True opts into genuine delays; elapsed_s stays deterministic

    def charge_probe(self) -> None:
        """Charge the cost of one probed voltage point."""
        self.advance(self._timing.cost_per_probe_s)

    def charge_probes(self, n: int) -> np.ndarray:
        """Charge ``n`` probes at once; return the elapsed time after each.

        Bit-identical to ``n`` successive :meth:`charge_probe` calls: the
        accumulation runs through the same sequential float additions
        (``numpy.cumsum``), so batched and scalar measurement paths agree on
        every recorded timestamp.  In realtime mode the whole batch sleeps
        once for the total duration.
        """
        if n < 0:
            raise ConfigurationError("cannot charge a negative number of probes")
        if n == 0:
            return np.zeros(0)
        cost = self._timing.cost_per_probe_s
        times = np.cumsum(
            np.concatenate(([self._elapsed_s], np.full(int(n), cost)))
        )[1:]
        if self._realtime:
            total = float(times[-1]) - self._elapsed_s
            if total > 0:
                time.sleep(total)  # repro: allow[wall-clock] -- realtime=True opts into genuine delays; elapsed_s stays deterministic
        self._elapsed_s = float(times[-1])
        return times

    def preview_probes(self, n: int) -> np.ndarray:
        """Timestamps :meth:`charge_probes` *would* return, without charging.

        Runs the identical ``cumsum`` arithmetic, so committing any prefix
        later via ``charge_probes(k)`` (``k <= n``) yields exactly the first
        ``k`` previewed floats.  The meter's fault-tolerant batched path
        uses this to plan a whole candidate batch, then charge only the
        prefix that measured cleanly.
        """
        if n < 0:
            raise ConfigurationError("cannot preview a negative number of probes")
        if n == 0:
            return np.zeros(0)
        cost = self._timing.cost_per_probe_s
        return np.cumsum(
            np.concatenate(([self._elapsed_s], np.full(int(n), cost)))
        )[1:]

    def reset(self) -> None:
        """Reset the accumulated simulated time to zero."""
        self._elapsed_s = 0.0
        self._started_wall = time.monotonic()  # repro: allow[wall-clock] -- re-anchors the telemetry timer only
