"""Simulated multi-channel DC voltage source (DAC rack).

Real tuning setups drive the plunger and barrier gates from a multi-channel
DAC with per-channel software limits (to protect the device) and finite ramp
rates.  The extraction algorithms only need ``set``/``get``, but modelling the
limits lets the library reject unsafe voltage requests the same way a real
rack would, and the ramp-rate model feeds the timing accounting when a probe
moves a gate a long way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError, VoltageRangeError


@dataclass(frozen=True)
class ChannelSpec:
    """One DAC channel: its name, allowed range, and ramp rate."""

    name: str
    min_voltage: float = -2.0
    max_voltage: float = 2.0
    ramp_rate_v_per_s: float = 10.0

    def __post_init__(self) -> None:
        if self.max_voltage <= self.min_voltage:
            raise ConfigurationError(
                f"channel {self.name!r}: max_voltage must exceed min_voltage"
            )
        if self.ramp_rate_v_per_s <= 0:
            raise ConfigurationError(
                f"channel {self.name!r}: ramp_rate_v_per_s must be positive"
            )


class VoltageSource:
    """A named set of DAC channels with range checking and ramp accounting."""

    def __init__(self, channels: tuple[ChannelSpec, ...] | list[ChannelSpec]) -> None:
        if not channels:
            raise ConfigurationError("VoltageSource requires at least one channel")
        names = [c.name for c in channels]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate channel names: {names}")
        self._channels = {c.name: c for c in channels}
        self._order = tuple(names)
        self._values = {name: 0.0 for name in names}

    @classmethod
    def for_gates(
        cls,
        gate_names: tuple[str, ...] | list[str],
        min_voltage: float = -2.0,
        max_voltage: float = 2.0,
        ramp_rate_v_per_s: float = 10.0,
    ) -> "VoltageSource":
        """Build a source with one identical channel per gate name."""
        channels = [
            ChannelSpec(
                name=name,
                min_voltage=min_voltage,
                max_voltage=max_voltage,
                ramp_rate_v_per_s=ramp_rate_v_per_s,
            )
            for name in gate_names
        ]
        return cls(channels)

    # ------------------------------------------------------------------
    @property
    def channel_names(self) -> tuple[str, ...]:
        """Channel names in creation order."""
        return self._order

    def channel(self, name: str) -> ChannelSpec:
        """Look up a channel spec by name."""
        try:
            return self._channels[name]
        except KeyError as exc:
            raise ConfigurationError(
                f"unknown channel {name!r}; channels: {self._order}"
            ) from exc

    def get(self, name: str) -> float:
        """Current output voltage of a channel."""
        self.channel(name)
        return self._values[name]

    def get_all(self) -> dict[str, float]:
        """Snapshot of all channel voltages."""
        return dict(self._values)

    def as_vector(self, names: tuple[str, ...] | list[str] | None = None) -> np.ndarray:
        """Channel voltages as a vector, ordered by ``names`` (default: all)."""
        order = tuple(names) if names is not None else self._order
        return np.array([self.get(name) for name in order], dtype=float)

    # ------------------------------------------------------------------
    def set(self, name: str, voltage: float) -> float:
        """Set one channel; returns the ramp time in seconds.

        Raises :class:`VoltageRangeError` if the request exceeds the channel's
        software limits.
        """
        spec = self.channel(name)
        voltage = float(voltage)
        if not np.isfinite(voltage):
            raise VoltageRangeError(f"channel {name!r}: voltage must be finite")
        if voltage < spec.min_voltage or voltage > spec.max_voltage:
            raise VoltageRangeError(
                f"channel {name!r}: requested {voltage:.6f} V outside "
                f"[{spec.min_voltage}, {spec.max_voltage}] V"
            )
        ramp_time = abs(voltage - self._values[name]) / spec.ramp_rate_v_per_s
        self._values[name] = voltage
        return ramp_time

    def set_many(self, voltages: dict[str, float]) -> float:
        """Set several channels; returns the longest ramp time (ramps overlap)."""
        ramp_times = [self.set(name, value) for name, value in voltages.items()]
        return max(ramp_times) if ramp_times else 0.0
