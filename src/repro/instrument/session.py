"""Experiment session: one tuning run against one device or dataset.

An :class:`ExperimentSession` bundles the pieces an extraction algorithm needs
— a measurement meter, a virtual clock, and (optionally) the ground truth of
the underlying synthetic device — plus convenience constructors for the two
ways the evaluation drives the library:

* :meth:`ExperimentSession.from_csd` replays a recorded diagram, exactly like
  the paper replays the qflow benchmarks;
* :meth:`ExperimentSession.from_device` measures a simulated device on demand
  over a chosen voltage window and resolution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..physics.csd import ChargeStabilityDiagram, CSDSimulator, TransitionLineGeometry
from ..physics.dot_array import DotArrayDevice
from ..physics.drift import DeviceDrift
from ..physics.noise import NoiseModel
from .measurement import (
    ChargeSensorMeter,
    DatasetBackend,
    DeviceBackend,
    MeasurementBackend,
)
from .resilience import ProbeRetryPolicy
from .timing import TimingModel, VirtualClock
from .voltage_source import VoltageSource


@dataclass(frozen=True)
class SessionSummary:
    """Aggregate statistics of a session after an extraction run."""

    n_probes: int
    n_requests: int
    n_pixels: int
    probe_fraction: float
    elapsed_s: float

    def as_dict(self) -> dict:
        """Plain-dict view (handy for report tables)."""
        return {
            "n_probes": self.n_probes,
            "n_requests": self.n_requests,
            "n_pixels": self.n_pixels,
            "probe_fraction": self.probe_fraction,
            "elapsed_s": self.elapsed_s,
        }


class ExperimentSession:
    """A measurement meter plus provenance and ground truth."""

    def __init__(
        self,
        meter: ChargeSensorMeter,
        geometry: TransitionLineGeometry | None = None,
        voltage_source: VoltageSource | None = None,
        label: str = "session",
    ) -> None:
        self._meter = meter
        self._geometry = geometry
        self._voltage_source = voltage_source
        self._label = label

    # ------------------------------------------------------------------
    @property
    def meter(self) -> ChargeSensorMeter:
        """The measurement meter the extraction algorithms call."""
        return self._meter

    @property
    def geometry(self) -> TransitionLineGeometry | None:
        """Ground-truth line geometry when the source is synthetic."""
        return self._geometry

    @property
    def voltage_source(self) -> VoltageSource | None:
        """The simulated DAC rack, when one was configured."""
        return self._voltage_source

    @property
    def label(self) -> str:
        """Human-readable session label."""
        return self._label

    @property
    def shape(self) -> tuple[int, int]:
        """Measurement grid shape."""
        return self._meter.shape

    def summary(self) -> SessionSummary:
        """Probe-count and timing statistics accumulated so far."""
        meter = self._meter
        return SessionSummary(
            n_probes=meter.n_probes,
            n_requests=meter.n_requests,
            n_pixels=meter.backend.n_pixels,
            probe_fraction=meter.probe_fraction,
            elapsed_s=meter.elapsed_s,
        )

    def reset(self) -> None:
        """Clear probe history so another algorithm can run on the same data."""
        self._meter.reset()

    # ------------------------------------------------------------------
    @classmethod
    def from_csd(
        cls,
        csd: ChargeStabilityDiagram,
        timing: TimingModel | None = None,
        realtime: bool = False,
        cache: bool = True,
        max_probes: int | None = None,
        label: str | None = None,
    ) -> "ExperimentSession":
        """Replay a recorded or simulated charge-stability diagram."""
        clock = VirtualClock(timing or TimingModel.paper_default(), realtime=realtime)
        meter = ChargeSensorMeter(
            DatasetBackend(csd), clock=clock, cache=cache, max_probes=max_probes
        )
        source = VoltageSource.for_gates((csd.gate_x, csd.gate_y))
        return cls(
            meter=meter,
            geometry=csd.geometry,
            voltage_source=source,
            label=label or csd.metadata.get("name", "csd-session"),
        )

    @classmethod
    def from_device(
        cls,
        device: DotArrayDevice,
        resolution: int | tuple[int, int] = 100,
        window: tuple[tuple[float, float], tuple[float, float]] | None = None,
        gate_x: int | str = "P1",
        gate_y: int | str = "P2",
        dot_a: int = 0,
        dot_b: int = 1,
        noise: NoiseModel | None = None,
        seed: int | np.random.SeedSequence | None = None,
        timing: TimingModel | None = None,
        realtime: bool = False,
        cache: bool = True,
        max_probes: int | None = None,
        drift: DeviceDrift | None = None,
        time_dependent_noise: bool = False,
        faults=None,
        probe_retry: ProbeRetryPolicy | None = None,
        kernel_cache: bool = True,
        label: str | None = None,
    ) -> "ExperimentSession":
        """Measure a simulated device on demand over a voltage grid.

        ``kernel_cache`` (default on) lets the backend serve its noise-free
        physics from the process-wide :mod:`repro.kernelcache` — bit-identical
        values, shared across sessions with the same device/window/resolution
        fingerprint; time-dependent sessions bypass it automatically.

        ``drift`` and ``time_dependent_noise`` make the backend evolve with
        the session's simulated clock (see
        :class:`~repro.instrument.measurement.DeviceBackend`); the timing
        model's per-probe cost doubles as the pixel-to-seconds conversion for
        the time-dependent noise mechanisms.

        ``faults`` injects deterministic lab misbehaviour: a registered
        fault-condition name, a :class:`~repro.faults.FaultModel`, or an
        iterable of either (see :func:`repro.faults.models_for`).  Probe-scope
        models wrap the backend in a
        :class:`~repro.faults.FaultyBackend` sharing the session seed
        (reserved key branch — adding faults never reshuffles the device's
        own noise/drift streams); worker-scope models are ignored here, the
        campaign layer applies them.  ``probe_retry`` sets how the meter
        rides out those faults.
        """
        simulator = CSDSimulator(
            device, dot_a=dot_a, dot_b=dot_b, gate_x=gate_x, gate_y=gate_y
        )
        if window is None:
            window = simulator.default_window()
        if isinstance(resolution, int):
            n_rows = n_cols = int(resolution)
        else:
            n_rows, n_cols = int(resolution[0]), int(resolution[1])
        (x_min, x_max), (y_min, y_max) = window
        xs = np.linspace(x_min, x_max, n_cols)
        ys = np.linspace(y_min, y_max, n_rows)
        timing = timing or TimingModel.paper_default()
        backend: MeasurementBackend = DeviceBackend(
            device,
            x_voltages=xs,
            y_voltages=ys,
            gate_x=gate_x,
            gate_y=gate_y,
            noise=noise,
            seed=seed,
            drift=drift,
            time_dependent_noise=time_dependent_noise,
            probe_interval_s=timing.cost_per_probe_s,
            kernel_cache=kernel_cache,
        )
        if faults is not None:
            # Imported here: repro.faults builds on the instrument layer, so
            # a top-level import would be circular.
            from ..faults import FaultyBackend, models_for, probe_fault_models

            probe_models = probe_fault_models(models_for(faults))
            if probe_models:
                backend = FaultyBackend(backend, probe_models, seed=seed)
        clock = VirtualClock(timing, realtime=realtime)
        meter = ChargeSensorMeter(
            backend,
            clock=clock,
            cache=cache,
            max_probes=max_probes,
            retry=probe_retry,
        )
        source = VoltageSource.for_gates(device.gate_names)
        return cls(
            meter=meter,
            geometry=simulator.geometry(),
            voltage_source=source,
            label=label or f"{device.name}-session",
        )


@dataclass(frozen=True)
class SessionFactory:
    """Reusable recipe for opening device sessions with shared settings.

    The array extractor opens one session per neighbouring gate pair and a
    tuning campaign opens one per job; both vary only the gate pair, the
    window, and the seed while the device, resolution, noise model, and
    timing stay fixed.  A factory captures that fixed part once, so every
    consumer builds sessions through the same code path (and the same
    defaults) instead of repeating the :meth:`ExperimentSession.from_device`
    argument list.

    Frozen and picklable, so a factory can be shipped to worker processes.
    """

    device: DotArrayDevice
    resolution: int | tuple[int, int] = 100
    noise: NoiseModel | None = None
    timing: TimingModel | None = None
    cache: bool = True
    max_probes: int | None = None
    realtime: bool = False
    drift: DeviceDrift | None = None
    time_dependent_noise: bool = False
    #: Fault injection: a registered condition name or fault model(s); probe
    #: scope applies inside every opened session, worker scope is carried
    #: along for the campaign layer to apply per job.
    faults: object | None = None
    #: How sessions ride out injected probe faults (None = fail on first).
    probe_retry: ProbeRetryPolicy | None = None
    #: Whether opened sessions may share noise-free kernels through the
    #: process-wide :mod:`repro.kernelcache` (bit-identical either way).
    kernel_cache: bool = True

    def make(
        self,
        gate_x: int | str = "P1",
        gate_y: int | str = "P2",
        dot_a: int = 0,
        dot_b: int = 1,
        window: tuple[tuple[float, float], tuple[float, float]] | None = None,
        seed: int | np.random.SeedSequence | None = None,
        label: str | None = None,
    ) -> ExperimentSession:
        """Open a session for one gate pair of the captured device."""
        return ExperimentSession.from_device(
            self.device,
            resolution=self.resolution,
            window=window,
            gate_x=gate_x,
            gate_y=gate_y,
            dot_a=dot_a,
            dot_b=dot_b,
            noise=self.noise,
            seed=seed,
            timing=self.timing,
            realtime=self.realtime,
            cache=self.cache,
            max_probes=self.max_probes,
            drift=self.drift,
            time_dependent_noise=self.time_dependent_noise,
            faults=self.faults,
            probe_retry=self.probe_retry,
            kernel_cache=self.kernel_cache,
            label=label or f"{self.device.name}:{gate_x}-{gate_y}",
        )
