"""Ablation A2: the anchor preprocessing design choices (§4.4).

Varies the anchor-search configuration over the ten workable benchmarks:

* the paper configuration (masks + Gaussian weighting + 10% margin),
* no Gaussian weighting (very wide prior),
* a very narrow Gaussian prior,
* no start margin.

The paper configuration must match or beat every variant in success rate.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_ablation_anchors


@pytest.mark.benchmark(group="ablation")
def test_ablation_anchors(benchmark, write_report):
    """Compare anchor-search variants over the ten workable benchmarks."""
    rows, report = benchmark.pedantic(run_ablation_anchors, rounds=1, iterations=1)
    write_report("ablation_anchors.txt", report)

    by_label = {row.label: row for row in rows}
    paper = by_label["paper anchors (masks + Gaussian)"]
    assert paper.success_rate >= 0.9
    for label, row in by_label.items():
        assert paper.success_rate >= row.success_rate - 1e-9, label
    # Every variant keeps the probe budget in the same ~5-20% band; the anchor
    # search cost is dominated by the mask sweeps, which all variants share.
    for row in rows:
        assert 0.03 < row.mean_probe_fraction < 0.25
