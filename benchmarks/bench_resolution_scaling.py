"""Scaling study A4: probe fraction and speedup vs CSD resolution.

The paper's Table 1 shows the speedup growing with scan size (6-8x at 63x63,
~10x at 100x100, ~19x at 200x200) because the baseline's cost grows with the
pixel count while the fast method only tracks the one-dimensional transition
lines.  This benchmark reproduces that trend on a single synthetic device
scanned at four resolutions.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_resolution_scaling


@pytest.mark.benchmark(group="scaling")
def test_resolution_scaling(benchmark, write_report):
    """Speedup and probe fraction as the scan resolution grows."""
    rows, report = benchmark.pedantic(
        lambda: run_resolution_scaling(resolutions=(63, 100, 150, 200)),
        rounds=1,
        iterations=1,
    )
    write_report("resolution_scaling.txt", report)

    assert [row.resolution for row in rows] == [63, 100, 150, 200]
    # The probed fraction falls with resolution (probes grow ~linearly while
    # pixels grow quadratically) ...
    fractions = [row.fast_fraction for row in rows]
    assert all(later < earlier for earlier, later in zip(fractions, fractions[1:]))
    # ... so the speedup over the full-scan baseline grows monotonically.
    speedups = [row.speedup for row in rows]
    assert all(later > earlier for earlier, later in zip(speedups, speedups[1:]))
    assert speedups[0] > 4.0
    assert speedups[-1] > 12.0
    # Baseline runtime is exactly pixels x 50 ms.
    for row in rows:
        assert row.baseline_elapsed_s == pytest.approx(0.05 * row.resolution**2)
