"""Performance gate: freshly measured ``BENCH_*.json`` vs committed baselines.

The repo persists one JSON payload per benchmark round (``BENCH_7.json``
through ``BENCH_10.json`` at the repo root).  CI regenerates each
payload at the baseline-matching configuration and this gate compares the
fresh numbers against the committed ones, key by key, under per-key
tolerance kinds:

* ``exact``   — configuration echoes, equivalence booleans, and
  deterministic work counters: any change fails the gate;
* ``speed``   — bigger-is-better dimensionless ratios: the fresh value must
  stay >= half the baseline;
* ``overhead`` — smaller-is-better dimensionless ratios: the fresh value
  must stay <= twice the baseline;
* ``info``    — absolute wall seconds and machine-dependent throughput:
  reported for the trajectory, never gated (CI hardware varies more than
  any real regression).

Keys absent from the manifest default to ``info``; keys missing from a
fresh payload fail.  Typical use::

    PYTHONPATH=src python benchmarks/bench_round2.py --json fresh/BENCH_9.json
    python benchmarks/perf_gate.py --check --fresh fresh
    python benchmarks/perf_gate.py --update --fresh fresh   # bless new baselines
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

#: Tolerance band for the ratio kinds: speed >= old / FACTOR,
#: overhead <= old * FACTOR.
RATIO_FACTOR = 2.0

#: Per-file, per-key tolerance kinds; unlisted keys are "info".
MANIFEST: dict[str, dict[str, str]] = {
    "BENCH_7.json": {
        "bench": "exact",
        "resolution": "exact",
        "n_probes": "exact",
        "rate_zero_bit_identical": "exact",
        "rate_zero_retries": "exact",
        "rate_zero_overhead_x": "overhead",
        "chaos_overhead_x": "overhead",
    },
    "BENCH_8.json": {
        "bench": "exact",
        "n_sample": "exact",
        "surface_draws": "exact",
        "surface_resolution": "exact",
        "surface_jobs": "exact",
        "surface_succeeded": "exact",
        "prefix_stable": "exact",
    },
    "BENCH_9.json": {
        "bench": "exact",
        "prune_dots": "exact",
        "prune_resolution": "exact",
        "prune_lattice_states": "exact",
        "prune_full_scores": "exact",
        "prune_pruned_scores": "exact",
        "prune_score_ratio_x": "exact",
        "prune_bit_identical": "exact",
        "prune_speedup_x": "speed",
        "cache_jobs": "exact",
        "cache_resolution": "exact",
        "cache_records_identical": "exact",
        "cache_speedup_x": "speed",
        "transport_jobs": "exact",
        "transport_rows_per_job": "exact",
        "transport_payload_mb": "exact",
        "transport_values_identical": "exact",
        "transport_speedup_x": "speed",
    },
    "BENCH_10.json": {
        "bench": "exact",
        "scaling_jobs": "exact",
        "scaling_dwell_ms": "exact",
        "scaling_records_identical": "exact",
        "scaling_speedup_4w_x": "speed",
        "steal_jobs": "exact",
        "steal_records_identical": "exact",
        "steals_observed": "exact",
    },
}


def _load(path: Path) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def compare_payload(
    name: str, baseline: dict, fresh: dict
) -> tuple[list[str], list[str]]:
    """Gate one payload; returns (violations, info lines)."""
    kinds = MANIFEST.get(name, {})
    violations: list[str] = []
    infos: list[str] = []
    for key, old in baseline.items():
        kind = kinds.get(key, "info")
        if key not in fresh:
            violations.append(f"{name}: key {key!r} missing from fresh payload")
            continue
        new = fresh[key]
        if kind == "exact":
            if new != old:
                violations.append(
                    f"{name}: {key} changed exactly-gated value: "
                    f"{old!r} -> {new!r}"
                )
        elif kind == "speed":
            if new < old / RATIO_FACTOR:
                violations.append(
                    f"{name}: {key} regressed below tolerance: "
                    f"{old} -> {new} (floor {old / RATIO_FACTOR:.2f})"
                )
        elif kind == "overhead":
            if new > old * RATIO_FACTOR:
                violations.append(
                    f"{name}: {key} grew past tolerance: "
                    f"{old} -> {new} (ceiling {old * RATIO_FACTOR:.2f})"
                )
        else:
            infos.append(f"{name}: {key} = {new} (baseline {old}, info only)")
    for key in fresh:
        if key not in baseline:
            infos.append(f"{name}: new key {key} = {fresh[key]} (no baseline)")
    return violations, infos


def run_check(baseline_dir: Path, fresh_dir: Path) -> int:
    violations: list[str] = []
    for name in sorted(MANIFEST):
        baseline_path = baseline_dir / name
        fresh_path = fresh_dir / name
        if not baseline_path.exists():
            violations.append(f"{name}: committed baseline missing")
            continue
        if not fresh_path.exists():
            violations.append(f"{name}: fresh payload missing from {fresh_dir}")
            continue
        file_violations, infos = compare_payload(
            name, _load(baseline_path), _load(fresh_path)
        )
        status = "FAIL" if file_violations else "ok"
        print(f"{name}: {status}")
        for line in infos:
            print(f"  info: {line.split(': ', 1)[1]}")
        for line in file_violations:
            print(f"  VIOLATION: {line.split(': ', 1)[1]}")
        violations.extend(file_violations)
    if violations:
        print(f"\nperf gate: {len(violations)} violation(s)")
        return 1
    print("\nperf gate: all payloads within tolerance")
    return 0


def run_update(baseline_dir: Path, fresh_dir: Path) -> int:
    for name in sorted(MANIFEST):
        fresh_path = fresh_dir / name
        if not fresh_path.exists():
            print(f"{name}: no fresh payload in {fresh_dir}, keeping baseline")
            continue
        shutil.copyfile(fresh_path, baseline_dir / name)
        print(f"{name}: baseline updated from {fresh_path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--check", action="store_true",
        help="compare fresh payloads against the committed baselines",
    )
    mode.add_argument(
        "--update", action="store_true",
        help="bless the fresh payloads as the new committed baselines",
    )
    parser.add_argument(
        "--fresh", metavar="DIR", required=True,
        help="directory holding the freshly generated BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline", metavar="DIR",
        default=str(Path(__file__).resolve().parent.parent),
        help="directory holding the committed baselines (default: repo root)",
    )
    args = parser.parse_args(argv)

    baseline_dir = Path(args.baseline)
    fresh_dir = Path(args.fresh)
    if args.update:
        return run_update(baseline_dir, fresh_dir)
    return run_check(baseline_dir, fresh_dir)


if __name__ == "__main__":
    sys.exit(main())
