"""Benchmark: scenario-space sampling throughput and surface-campaign cost.

The scenario-space stack has two performance-sensitive layers:

* **sampling** — ``ScenarioSpace.sample(n, seed)`` spawns two seed children
  and materialises a full :class:`~repro.scenarios.LabScenario` per draw.
  The miner evaluates hundreds of draws per search, so sampling must stay
  comfortably in the thousands-of-draws-per-second range;
* **surfaces** — :func:`~repro.scenariospace.success_surface` fans every
  draw through the campaign engine.  Its wall time is dominated by the
  extractions themselves, so the surface overhead (binning, Wilson
  intervals, report assembly) must be negligible next to the jobs.

This file is both a pytest benchmark (like its siblings) and a standalone
script for CI smoke runs and the persisted perf trajectory::

    PYTHONPATH=src python benchmarks/bench_scenariospace.py --smoke
    PYTHONPATH=src python benchmarks/bench_scenariospace.py --json BENCH_8.json
"""

from __future__ import annotations

import argparse
import sys
import time

import pytest
from _emit import emit_json

from repro.scenariospace import (
    Choice,
    Fixed,
    LogUniform,
    ScenarioSpace,
    Uniform,
    success_surface,
)
from repro.scenarios import DeviceSpec


def _space(name: str = "bench") -> ScenarioSpace:
    return ScenarioSpace(
        name=name,
        device=Choice(
            options=(
                DeviceSpec.of("double_dot"),
                DeviceSpec.of("linear_array", n_dots=6),
                DeviceSpec.of("grid_array", rows=2, cols=3),
            )
        ),
        noise_scale=LogUniform(0.25, 4.0),
        drift_mv_per_hour=Uniform(0.0, 30.0),
        fault_rate=Uniform(0.0, 0.2),
    )


@pytest.mark.benchmark(group="scenariospace")
def test_sampling_throughput(benchmark):
    """Sampling hundreds of draws is instant next to running even one."""
    space = _space()
    draws = benchmark.pedantic(
        lambda: space.sample(200, seed=3), rounds=3, iterations=1
    )
    assert len(draws) == 200


@pytest.mark.benchmark(group="scenariospace")
def test_surface_campaign(benchmark, write_report):
    """A small success surface end-to-end: sample, run, bin, report."""
    space = _space()
    report = benchmark.pedantic(
        lambda: success_surface(
            space,
            n_draws=8,
            seed=1,
            axes=("noise_scale", "drift_mv_per_hour"),
            bins=2,
            resolution=24,
        ),
        rounds=1,
        iterations=1,
    )
    assert report.n_jobs == 8
    write_report("scenariospace.txt", report.format())


def run_suite(n_sample: int, n_draws: int, resolution: int) -> dict:
    """Measure both layers and return the perf-trajectory payload."""
    space = _space()

    started = time.perf_counter()
    draws = space.sample(n_sample, seed=3)
    sample_s = time.perf_counter() - started

    started = time.perf_counter()
    report = success_surface(
        space,
        n_draws=n_draws,
        seed=1,
        axes=("noise_scale", "drift_mv_per_hour"),
        bins=2,
        resolution=resolution,
    )
    surface_s = time.perf_counter() - started

    return {
        "bench": "scenariospace",
        "n_sample": n_sample,
        "sample_s": round(sample_s, 4),
        "draws_per_s": round(n_sample / sample_s, 1),
        "surface_draws": n_draws,
        "surface_resolution": resolution,
        "surface_s": round(surface_s, 4),
        "surface_jobs": report.n_jobs,
        "surface_succeeded": report.n_succeeded,
        "surface_s_per_job": round(surface_s / max(report.n_jobs, 1), 4),
        "prefix_stable": [d.params for d in draws[:5]]
        == [d.params for d in space.sample(5, seed=3)],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sample and surface (8 draws, resolution 24) for CI",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write the measurements as JSON (the persisted perf trajectory)",
    )
    args = parser.parse_args(argv)

    n_sample = 200 if args.smoke else 2000
    n_draws = 8 if args.smoke else 48
    stats = run_suite(n_sample, n_draws, resolution=24)

    print(f"scenario-space performance (sample {n_sample}, "
          f"surface {n_draws} draws at resolution 24):")
    print(f"  sampling:          {stats['sample_s'] * 1e3:8.1f} ms "
          f"({stats['draws_per_s']:.0f} draws/s)")
    print(f"  success surface:   {stats['surface_s'] * 1e3:8.1f} ms "
          f"({stats['surface_succeeded']}/{stats['surface_jobs']} jobs ok, "
          f"{stats['surface_s_per_job'] * 1e3:.1f} ms/job)")

    if not stats["prefix_stable"]:
        print("ERROR: sampling is not prefix-stable")
        return 1
    if stats["draws_per_s"] < 50:
        print("ERROR: sampling throughput collapsed below 50 draws/s")
        return 1

    if args.json:
        emit_json(stats, args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
