"""Smoke/benchmark runner: every registered tuning pipeline, end to end.

The registry's contract is that anything listed by
``python -m repro.pipeline --list`` runs end to end on a device; this
script enforces it (CI runs ``--smoke``) and prints a per-pipeline cost
table from the stage telemetry, so a method comparison is one command::

    PYTHONPATH=src python benchmarks/bench_pipelines.py --smoke
    PYTHONPATH=src python benchmarks/bench_pipelines.py --resolution 100 --seed 3
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.reporting import format_table
from repro.pipeline import all_pipelines, format_stage_costs
from repro.scenarios import get_scenario


def run_all(resolution: int, seed: int, scenario: str, verbose: bool) -> list[dict]:
    """Run every registered pipeline on a fresh seeded session; return rows."""
    rows = []
    for pipeline in all_pipelines():
        session = get_scenario(scenario).open_session(
            resolution=resolution, seed=seed
        )
        result = pipeline.run(session)
        probes = sum(t.n_probes for t in result.stage_telemetry)
        if probes != result.probe_stats.n_probes:
            raise AssertionError(
                f"{pipeline.name}: stage probes {probes} != "
                f"probe stats {result.probe_stats.n_probes}"
            )
        if not result.stage_telemetry:
            raise AssertionError(f"{pipeline.name}: no stage telemetry recorded")
        rows.append(
            {
                "pipeline": pipeline.name,
                "method": result.method,
                "success": result.success,
                "n_probes": result.probe_stats.n_probes,
                "probe_fraction": result.probe_stats.probe_fraction,
                "sim_s": result.probe_stats.elapsed_s,
                "n_stages": len(result.stage_telemetry),
            }
        )
        if verbose:
            print(f"\n== {pipeline.name} ==")
            print(format_stage_costs(result.stage_telemetry))
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run for CI: every registered pipeline must complete",
    )
    parser.add_argument("--resolution", type=int, default=100)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--scenario", default="quiet_lab")
    parser.add_argument(
        "--per-stage", action="store_true", help="print each pipeline's stage table"
    )
    args = parser.parse_args(argv)
    resolution = 48 if args.smoke else args.resolution
    rows = run_all(resolution, args.seed, args.scenario, verbose=args.per_stage)
    print(
        format_table(
            ["Pipeline", "Method", "Success", "Probes", "Fraction", "Sim time", "Stages"],
            [
                [
                    r["pipeline"],
                    r["method"],
                    "yes" if r["success"] else "no",
                    str(r["n_probes"]),
                    f"{100.0 * r['probe_fraction']:.1f}%",
                    f"{r['sim_s']:.1f}s",
                    str(r["n_stages"]),
                ]
                for r in rows
            ],
            title=f"Registered pipelines on {args.scenario} @ {resolution}px (seed {args.seed})",
        )
    )
    # The smoke contract: every registered pipeline ran end to end (errors
    # raise above); the reference method must also extract successfully.
    fast = next(r for r in rows if r["pipeline"] == "fast-extraction")
    if not fast["success"]:
        print("FAIL: fast-extraction did not succeed on the smoke scenario")
        return 1
    print(f"\nOK: {len(rows)} registered pipelines ran end to end")
    return 0


if __name__ == "__main__":
    sys.exit(main())
