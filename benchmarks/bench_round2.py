"""Benchmark: round-two overhead cuts — solver pruning, kernel cache, transport.

One file measures all three layers of the round-two performance work and
persists them as ``BENCH_9.json`` for :mod:`benchmarks.perf_gate`:

* **solver** — bound-certified lattice pruning while rasterising a 6-dot
  chain's default CSD window (reuses :func:`bench_probe_path.compare_pruning`);
  exact equality plus the lattice-score reduction;
* **cache** — the process-wide kernel cache on a repeat-heavy serial
  campaign (reuses :func:`bench_campaign.compare_kernel_cache`); exact
  record equality plus the wall-time speedup;
* **transport** — :class:`~repro.execution.ProcessPoolBackend` shipping
  columnar payloads over shared memory vs the pickle pipe; exact value
  equality plus the transfer-path speedup.

This file is both a pytest benchmark (like its siblings) and a standalone
script for CI smoke runs and the persisted perf trajectory::

    PYTHONPATH=src python benchmarks/bench_round2.py --smoke
    PYTHONPATH=src python benchmarks/bench_round2.py --json BENCH_9.json
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass

import numpy as np
import pytest
from _emit import emit_json
from bench_campaign import compare_kernel_cache
from bench_probe_path import compare_pruning

from repro.execution import ProcessPoolBackend

#: Speedup the shared-memory transport must reach over the pickle pipe on
#: the columnar payload grid below (transfer-bound, compute-trivial jobs).
TARGET_TRANSPORT_SPEEDUP = 1.2


@dataclass(frozen=True)
class PayloadJob:
    """A transfer-bound job: generate one columnar record of ``n_rows`` rows."""

    job_id: int
    n_rows: int


def make_payload(job: PayloadJob) -> dict[str, np.ndarray]:
    """Deterministic columnar record (a ProbeLog-shaped column dict)."""
    rng = np.random.default_rng(job.job_id)
    return {
        "rows": np.arange(job.n_rows, dtype=np.int64),
        "cols": np.arange(job.n_rows, dtype=np.int64)[::-1].copy(),
        "currents": rng.standard_normal(job.n_rows),
        "timestamps": np.cumsum(rng.random(job.n_rows)),
    }


def _collect(transport: str, jobs: list[PayloadJob], workers: int):
    """Run the payload grid on one transport; returns (records, wall_s)."""
    backend = ProcessPoolBackend(max_workers=workers, transport=transport)
    started = time.perf_counter()
    records = dict(backend.submit(jobs, make_payload))
    return records, time.perf_counter() - started


def _records_equal(a: dict, b: dict) -> bool:
    if a.keys() != b.keys():
        return False
    for job_id in a:
        left, right = a[job_id], b[job_id]
        if left.keys() != right.keys():
            return False
        for column in left:
            if left[column].dtype != right[column].dtype:
                return False
            if not np.array_equal(left[column], right[column]):
                return False
    return True


def compare_transport(n_jobs: int, n_rows: int, workers: int = 2) -> dict:
    """Pickle vs shared-memory transport on identical columnar grids."""
    jobs = [PayloadJob(job_id=i, n_rows=n_rows) for i in range(n_jobs)]
    payload_bytes = sum(v.nbytes for v in make_payload(jobs[0]).values())
    pickle_records, pickle_s = _collect("pickle", jobs, workers)
    shm_records, shm_s = _collect("shared-memory", jobs, workers)
    return {
        "transport_jobs": n_jobs,
        "transport_rows_per_job": n_rows,
        "transport_payload_mb": round(payload_bytes / 2**20, 2),
        "transport_pickle_s": round(pickle_s, 4),
        "transport_shm_s": round(shm_s, 4),
        "transport_speedup_x": round(pickle_s / max(shm_s, 1e-12), 2),
        "transport_values_identical": _records_equal(pickle_records, shm_records),
    }


def run_suite(smoke: bool) -> dict:
    """Measure all three layers and return the perf-trajectory payload."""
    solver = compare_pruning(resolution=40 if smoke else 100)
    cache = compare_kernel_cache(
        n_repeats=2 if smoke else 8, resolution=40 if smoke else 100
    )
    transport = compare_transport(
        n_jobs=8 if smoke else 32, n_rows=1 << 14 if smoke else 1 << 19
    )
    return {"bench": "round2", **solver, **cache, **transport}


@pytest.mark.benchmark(group="round2")
def test_transport_values_identical(write_report):
    """Shared-memory and pickle transports carry identical columnar values."""
    stats = compare_transport(n_jobs=6, n_rows=1 << 14)
    write_report(
        "transport.txt",
        "\n".join(
            [
                f"columnar grid: {stats['transport_jobs']} jobs x "
                f"{stats['transport_payload_mb']} MB",
                f"pickle pipe:   {stats['transport_pickle_s']:.3f}s",
                f"shared memory: {stats['transport_shm_s']:.3f}s "
                f"({stats['transport_speedup_x']:.2f}x)",
                f"values identical: {stats['transport_values_identical']}",
            ]
        ),
    )
    assert stats["transport_values_identical"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small grids (resolution 40, tiny payloads) for CI",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write the measurements as JSON (the persisted perf trajectory)",
    )
    args = parser.parse_args(argv)

    stats = run_suite(smoke=args.smoke)

    print(f"solver pruning ({stats['prune_dots']}-dot chain, "
          f"{stats['prune_resolution']}x{stats['prune_resolution']}):")
    print(f"  scores: {stats['prune_full_scores']} -> {stats['prune_pruned_scores']} "
          f"({stats['prune_score_ratio_x']:.1f}x fewer), "
          f"wall {stats['prune_full_s']:.3f}s -> {stats['prune_pruned_s']:.3f}s, "
          f"bit-identical: {stats['prune_bit_identical']}")
    print(f"kernel cache ({stats['cache_jobs']} repeat-heavy jobs at "
          f"{stats['cache_resolution']}x{stats['cache_resolution']}):")
    print(f"  wall {stats['cache_off_s']:.2f}s -> {stats['cache_on_s']:.2f}s "
          f"({stats['cache_speedup_x']:.2f}x), "
          f"records identical: {stats['cache_records_identical']}")
    print(f"shm transport ({stats['transport_jobs']} jobs x "
          f"{stats['transport_payload_mb']} MB columnar):")
    print(f"  wall {stats['transport_pickle_s']:.2f}s -> {stats['transport_shm_s']:.2f}s "
          f"({stats['transport_speedup_x']:.2f}x), "
          f"values identical: {stats['transport_values_identical']}")

    for flag in ("prune_bit_identical", "cache_records_identical",
                 "transport_values_identical"):
        if not stats[flag]:
            print(f"ERROR: {flag} is false — an optimisation changed values")
            return 1
    print("equivalence check: all three layers are value-exact")

    if args.json:
        emit_json(stats, args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
