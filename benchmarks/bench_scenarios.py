"""Benchmark: the scenario catalogue end to end, and what time-dependence costs.

Two questions:

1. **Does every registered scenario run?**  Each catalogue entry is swept
   through a seeded extraction; the sweep prints success, probes, and
   simulated time per scenario — the library's standing robustness table.
2. **What does time-dependent evaluation cost?**  A full-grid acquisition on
   a time-dependent backend re-evaluates noise per probe timestamp instead
   of fancy-indexing one cached field; the overhead must stay within a small
   factor of the static batched path (it is still one vectorised pass).

Like its siblings, this file is both a pytest benchmark and a standalone
script for CI smoke runs::

    PYTHONPATH=src python benchmarks/bench_scenarios.py --smoke
    PYTHONPATH=src python benchmarks/bench_scenarios.py --resolution 100
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np
import pytest

from repro.core import FastVirtualGateExtractor
from repro.instrument import ChargeSensorMeter, VirtualClock
from repro.scenarios import all_scenarios, get_scenario

#: The time-dependent full grid must stay within this factor of the static
#: batched acquisition (both are single vectorised passes; the temporal
#: samplers add elementwise work, not Python-level loops).
MAX_TIME_DEPENDENT_OVERHEAD = 10.0


def sweep_catalogue(resolution: int, seed: int = 17) -> list[dict]:
    """Run a seeded extraction under every registered scenario."""
    rows = []
    for scenario in all_scenarios():
        session = scenario.open_session(resolution=resolution, seed=seed)
        started = time.perf_counter()
        result = FastVirtualGateExtractor().extract(session)
        rows.append(
            {
                "scenario": scenario.name,
                "success": result.success,
                "n_probes": session.meter.n_probes,
                "sim_s": session.meter.elapsed_s,
                "wall_s": time.perf_counter() - started,
                "failure": result.failure_reason,
            }
        )
    return rows


def format_sweep(rows: list[dict]) -> str:
    lines = [f"{'scenario':<18} {'ok':<5} {'probes':>7} {'sim':>9} {'wall':>8}"]
    for row in rows:
        lines.append(
            f"{row['scenario']:<18} {str(row['success']):<5} "
            f"{row['n_probes']:>7} {row['sim_s']:>8.1f}s {row['wall_s']:>7.3f}s"
        )
    return "\n".join(lines)


def time_dependence_overhead(resolution: int) -> tuple[float, float, bool]:
    """(static_s, time_dependent_s, bit_identical_checks) for a full grid."""
    static_session = get_scenario("standard_lab").open_session(
        resolution=resolution, seed=3
    )
    start = time.perf_counter()
    static_session.meter.acquire_full_grid()
    static_s = time.perf_counter() - start

    # Equivalence spot-check: batched vs scalar on the time-dependent
    # backend.  On an evolving device "equivalent" means the same *request
    # sequence*, so the scalar loop replays the first row-major probes of the
    # full-grid acquisition — same pixels at the same clock readings.
    td_session = get_scenario("overnight_run").open_session(
        resolution=resolution, seed=3
    )
    start = time.perf_counter()
    image = td_session.meter.acquire_full_grid()
    td_s = time.perf_counter() - start
    scenario = get_scenario("overnight_run")
    scalar_meter = ChargeSensorMeter(
        scenario.open_session(resolution=resolution, seed=3).meter.backend,
        clock=VirtualClock(scenario.timing),
    )
    n_check = min(resolution, 16)
    identical = bool(
        np.array_equal(
            np.array([scalar_meter.get_current(0, c) for c in range(n_check)]),
            image.ravel()[:n_check],
        )
    )
    return static_s, td_s, identical


@pytest.mark.benchmark(group="scenarios")
def test_catalogue_sweep_and_overhead(benchmark, write_report):
    """Every scenario runs; time-dependent acquisition stays cheap."""
    resolution = 64
    rows = sweep_catalogue(resolution)

    session = get_scenario("overnight_run").open_session(resolution=resolution, seed=3)

    def run_time_dependent_grid():
        session.meter.reset()
        return session.meter.acquire_full_grid()

    benchmark(run_time_dependent_grid)
    static_s, td_s, identical = time_dependence_overhead(resolution)
    overhead = td_s / max(static_s, 1e-12)
    write_report(
        "scenarios.txt",
        "\n".join(
            [
                format_sweep(rows),
                "",
                f"full grid {resolution}x{resolution}:",
                f"  static batched:        {static_s:.3f}s",
                f"  time-dependent batched: {td_s:.3f}s ({overhead:.1f}x)",
                f"  scalar/batched identical: {identical}",
            ]
        ),
    )
    assert identical
    # Every scenario either succeeds or reports *why* it failed; a failure
    # with no reason means the pipeline machinery broke.
    assert all(row["success"] or row["failure"] for row in rows)
    assert overhead <= MAX_TIME_DEPENDENT_OVERHEAD


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small grids for CI: checks the whole catalogue runs + equivalence",
    )
    parser.add_argument(
        "--resolution", type=int, default=64,
        help="extraction resolution per axis (default 64)",
    )
    args = parser.parse_args(argv)
    resolution = 40 if args.smoke else args.resolution

    rows = sweep_catalogue(resolution)
    print(f"scenario catalogue sweep at {resolution}x{resolution}:")
    print(format_sweep(rows))

    static_s, td_s, identical = time_dependence_overhead(resolution)
    overhead = td_s / max(static_s, 1e-12)
    print(f"\nfull-grid acquisition: static {static_s:.3f}s, "
          f"time-dependent {td_s:.3f}s ({overhead:.1f}x)")
    if not identical:
        print("ERROR: time-dependent scalar and batched paths diverge")
        return 1
    print("equivalence check: time-dependent scalar and batched paths agree")

    crashed = [row["scenario"] for row in rows if not row["success"] and not row["failure"]]
    if crashed:
        print(f"ERROR: scenarios failed without a failure reason: {crashed}")
        return 1
    if not args.smoke and overhead > MAX_TIME_DEPENDENT_OVERHEAD:
        print(f"ERROR: time-dependent overhead {overhead:.1f}x exceeds "
              f"{MAX_TIME_DEPENDENT_OVERHEAD:.0f}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
