"""Computational cost of the fast-extraction stages (supporting measurement).

The paper's speedup comes from probe reduction, not computation, but a
downstream user still cares that the algorithm itself is cheap compared to a
single 50 ms dwell.  These micro-benchmarks time the pure computation of each
pipeline stage against a cached replay of benchmark 6 (100x100):

* anchor preprocessing (diagonal probe + mask sweeps),
* the two shrinking-triangle sweeps,
* the two-piece-wise linear fit,
* the complete pipeline.

Because the replay session answers probes from memory, the measured times are
algorithm-only and can be compared directly with the dwell-dominated runtimes
in Table 1.
"""

from __future__ import annotations

import pytest

from repro.core import (
    AnchorFinder,
    FastVirtualGateExtractor,
    TransitionLineFitter,
    TransitionLineSweeper,
)
from repro.core.extraction import FastVirtualGateExtractor as _Extractor
from repro.datasets import load_benchmark
from repro.instrument import ExperimentSession


@pytest.fixture(scope="module")
def csd():
    return load_benchmark(6)


@pytest.mark.benchmark(group="stages")
def test_anchor_search_compute_time(benchmark, csd):
    """Anchor preprocessing on a fresh session each round."""

    def run():
        session = ExperimentSession.from_csd(csd)
        return AnchorFinder(session.meter).find()

    result = benchmark(run)
    assert result.steep_anchor.col > result.shallow_anchor.col


@pytest.mark.benchmark(group="stages")
def test_sweeps_compute_time(benchmark, csd):
    """Row + column sweeps, anchors precomputed outside the timed region."""
    session = ExperimentSession.from_csd(csd)
    anchors = AnchorFinder(session.meter).find()

    def run():
        return TransitionLineSweeper(session.meter).run(
            anchors.steep_anchor, anchors.shallow_anchor
        )

    row_trace, column_trace = benchmark(run)
    assert row_trace.n_points > 0 and column_trace.n_points > 0


@pytest.mark.benchmark(group="stages")
def test_fit_compute_time(benchmark, csd):
    """The scipy curve_fit stage on the filtered points of a real run."""
    session = ExperimentSession.from_csd(csd)
    extraction = FastVirtualGateExtractor().extract(session)
    assert extraction.success
    points = extraction.points.filtered_points
    xs, ys = session.meter.x_voltages, session.meter.y_voltages
    import numpy as np

    voltage_points = np.array([[xs[col], ys[row]] for row, col in points])
    steep = extraction.anchors.steep_anchor
    shallow = extraction.anchors.shallow_anchor
    steep_v = (float(xs[steep.col]), float(ys[steep.row]))
    shallow_v = (float(xs[shallow.col]), float(ys[shallow.row]))

    fit = benchmark(
        lambda: TransitionLineFitter().fit(voltage_points, steep_v, shallow_v)
    )
    assert fit.slope_steep < 0


@pytest.mark.benchmark(group="stages")
def test_full_pipeline_compute_time(benchmark, csd):
    """Whole fast extraction (computation only; probes replayed from memory)."""

    def run():
        return _Extractor().extract(ExperimentSession.from_csd(csd))

    result = benchmark(run)
    assert result.success
    # The computation is negligible next to the simulated experiment time:
    # ~1000 probes x 50 ms of dwell, versus well under a second of compute.
    assert result.probe_stats.elapsed_s > 40.0
