"""Computational cost of the fast-extraction stages (supporting measurement).

The paper's speedup comes from probe reduction, not computation, but a
downstream user still cares that the algorithm itself is cheap compared to a
single 50 ms dwell.  Since the pipeline refactor the per-stage numbers come
straight from the run's own :class:`~repro.core.result.StageTelemetry` —
every stage is timed (wall seconds) and cost-accounted (probes, cache hits,
simulated seconds) by the composer, so the benchmarks no longer re-create
each stage with ad-hoc timers.  Against a cached replay of benchmark 6
(100x100):

* the whole pipeline is benchmarked end to end, with the per-stage wall
  breakdown exported through ``benchmark.extra_info``;
* each stage's telemetry is checked for the structural invariants the
  evaluation relies on (probe totals balance, compute-only stages are free);
* the probes-vs-computation claim is asserted directly from telemetry: the
  dwell-dominated simulated time dwarfs the measured compute time.
"""

from __future__ import annotations

import pytest

from repro.datasets import load_benchmark
from repro.instrument import ExperimentSession
from repro.pipeline import get_pipeline

#: Stages of the default composition, in execution order.
FAST_STAGES = ("anchors", "sweeps", "filter", "fit", "validate")


@pytest.fixture(scope="module")
def csd():
    return load_benchmark(6)


def run_fast_pipeline(csd):
    """One full fast extraction on a fresh replay session."""
    return get_pipeline("fast-extraction").run(ExperimentSession.from_csd(csd))


@pytest.mark.benchmark(group="stages")
def test_full_pipeline_compute_time(benchmark, csd):
    """Whole fast extraction (computation only; probes replayed from memory)."""
    result = benchmark(lambda: run_fast_pipeline(csd))
    assert result.success
    # Per-stage wall breakdown, from the run's own telemetry.
    benchmark.extra_info["stage_wall_ms"] = {
        t.stage: round(1e3 * t.wall_s, 3) for t in result.stage_telemetry
    }
    # The computation is negligible next to the simulated experiment time:
    # ~1000 probes x 50 ms of dwell, versus well under a second of compute.
    assert result.probe_stats.elapsed_s > 40.0
    assert sum(t.wall_s for t in result.stage_telemetry) < result.probe_stats.elapsed_s


@pytest.mark.benchmark(group="stages")
def test_probe_spending_stages_dominate_cost(benchmark, csd):
    """Telemetry invariants: probes land in anchors+sweeps, nothing else."""
    result = benchmark(lambda: run_fast_pipeline(csd))
    telemetry = {t.stage: t for t in result.stage_telemetry}
    assert tuple(telemetry) == FAST_STAGES
    assert all(t.outcome == "ok" for t in telemetry.values())
    # Probe accounting balances against the run's ProbeStatistics...
    assert (
        sum(t.n_probes for t in telemetry.values()) == result.probe_stats.n_probes
    )
    assert sum(t.sim_elapsed_s for t in telemetry.values()) == pytest.approx(
        result.probe_stats.elapsed_s
    )
    # ... and only the probe-spending stages spend.
    assert telemetry["anchors"].n_probes > 0
    assert telemetry["sweeps"].n_probes > 0
    for stage in ("filter", "fit", "validate"):
        assert telemetry[stage].n_probes == 0
        assert telemetry[stage].sim_elapsed_s == 0.0


def _context_through(csd, n_stages: int):
    """A fresh replay context advanced through the first ``n_stages`` stages."""
    from repro.pipeline import TuneContext

    pipeline = get_pipeline("fast-extraction")
    ctx = TuneContext(
        meter=ExperimentSession.from_csd(csd).meter,
        config=pipeline.default_config(),
        gate_x=csd.gate_x,
        gate_y=csd.gate_y,
    )
    for stage in pipeline.stages[:n_stages]:
        stage.run(ctx)
    return pipeline, ctx


@pytest.mark.benchmark(group="stages")
def test_anchor_stage_compute_time(benchmark, csd):
    """Anchor preprocessing on a fresh session each round (stage.run only)."""
    from repro.pipeline import AnchorStage, TuneContext

    pipeline = get_pipeline("fast-extraction")

    def run():
        ctx = TuneContext(
            meter=ExperimentSession.from_csd(csd).meter,
            config=pipeline.default_config(),
        )
        AnchorStage().run(ctx)
        return ctx

    ctx = benchmark(run)
    assert ctx.anchors is not None
    assert ctx.anchors.steep_anchor.col > ctx.anchors.shallow_anchor.col


@pytest.mark.benchmark(group="stages")
def test_sweep_stage_compute_time(benchmark, csd):
    """Row + column sweeps, anchors precomputed outside the timed region.

    The shared replay meter answers repeated rounds from cache, so the
    measured time is the sweep *computation*, not the probes.
    """
    from repro.pipeline import SweepStage

    _, ctx = _context_through(csd, 1)  # anchors done
    stage = SweepStage()

    benchmark(lambda: stage.run(ctx))
    row_trace, column_trace = ctx.extras["sweep_traces"]
    assert row_trace.n_points > 0 and column_trace.n_points > 0


@pytest.mark.benchmark(group="stages")
def test_fit_stage_compute_time(benchmark, csd):
    """The scipy curve_fit stage on the filtered points of a real run."""
    from repro.pipeline import FitStage

    _, ctx = _context_through(csd, 3)  # anchors, sweeps, filter done
    stage = FitStage()

    benchmark(lambda: stage.run(ctx))
    assert ctx.fit is not None
    assert ctx.fit.slope_steep < 0
