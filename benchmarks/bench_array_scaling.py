"""Experiment E6: cost of the n-dot array extension (§2.3).

Virtual gates for an n-dot linear array require n-1 sequential pairwise
extractions.  This benchmark runs the full array bring-up for 2, 3, and 4 dot
devices (the 4-dot case mirrors the paper's Figure 1 device), verifies every
pairwise extraction succeeds against the ground-truth capacitance model, and
records how probes and simulated runtime grow with the array size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import run_array_scaling


@pytest.mark.benchmark(group="array")
def test_array_scaling(benchmark, write_report):
    """Sequential pairwise extraction for 2-, 3-, and 4-dot arrays."""
    rows, report = benchmark.pedantic(
        lambda: run_array_scaling(dot_counts=(2, 3, 4), resolution=80),
        rounds=1,
        iterations=1,
    )
    write_report("array_scaling.txt", report)

    assert [row.n_pairs for row in rows] == [1, 2, 3]
    assert all(row.all_pairs_succeeded for row in rows)
    assert all(np.isfinite(row.max_alpha_error) and row.max_alpha_error < 0.12 for row in rows)
    # Cost grows roughly linearly with the number of pairs.
    probes = [row.total_probes for row in rows]
    assert probes[1] > probes[0] and probes[2] > probes[1]
    per_pair = [row.total_probes / row.n_pairs for row in rows]
    assert max(per_pair) / min(per_pair) < 1.6
    # Each pairwise extraction stays far cheaper than a full 80x80 scan.
    for row in rows:
        assert row.total_probes / row.n_pairs < 0.25 * 80 * 80
