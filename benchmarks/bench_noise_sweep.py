"""Robustness study A3: success rate of the fast extraction vs noise level.

Sweeps the noise amplitude from noiseless to far beyond the benchmark suite's
standard level on a 100x100 device (three seeds per level) and records the
success rate, the mean coefficient error, and the probe fraction.  The curve
explains the paper's two failing benchmarks: they sit beyond the point where
the sensor step disappears under the noise floor.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_noise_sweep


@pytest.mark.benchmark(group="robustness")
def test_noise_sweep(benchmark, write_report):
    """Success rate and accuracy of the fast extraction as noise grows."""
    rows, report = benchmark.pedantic(
        lambda: run_noise_sweep(noise_scales=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0), n_seeds=3),
        rounds=1,
        iterations=1,
    )
    write_report("noise_sweep.txt", report)

    assert rows[0].noise_scale == 0.0
    assert rows[0].success_rate == 1.0
    assert rows[1].success_rate == 1.0  # the suite's standard level is easy
    # Success never *improves* by more than one seed as the noise gets worse.
    for earlier, later in zip(rows, rows[1:]):
        assert later.success_rate <= earlier.success_rate + 1.0 / 3 + 1e-9
    # The probe fraction stays in the expected band at every noise level.
    for row in rows:
        assert 0.02 < row.mean_probe_fraction < 0.25
