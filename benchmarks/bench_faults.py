"""Benchmark: fault-injection and retry-path overhead vs the clean probe path.

The resilience stack's performance contract has two halves:

* wrapping a backend in :class:`~repro.faults.FaultyBackend` with rate-0
  models (the "insurance premium": retry plumbing armed, no faults firing)
  must cost only a small constant factor over the clean path, because the
  meter still commits fault-free batches in one vectorised step;
* a genuinely chaotic run ("flaky-lab") pays per injected fault event — each
  disruption commits the fault-free prefix and re-plans the remaining batch —
  not per-probe Python overhead; a full-grid chaos run stays in the
  milliseconds.

This file is both a pytest benchmark (like its siblings) and a standalone
script for CI smoke runs and the persisted perf trajectory::

    PYTHONPATH=src python benchmarks/bench_faults.py --smoke
    PYTHONPATH=src python benchmarks/bench_faults.py --json BENCH_7.json
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np
import pytest
from _emit import emit_json

from repro.faults import ProbeHangFault, TransientReadFault
from repro.instrument import ExperimentSession, ProbeRetryPolicy
from repro.scenarios import DeviceSpec

RETRY = ProbeRetryPolicy(max_attempts=6, backoff_s=0.05, timeout_s=10.0)

RATE_ZERO = (TransientReadFault(rate=0.0), ProbeHangFault(rate=0.0))


def _session(faults=None, probe_retry=None, resolution=63, seed=7):
    device = DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)).build()
    # kernel_cache off: this benchmark isolates fault-wrapping overhead, and
    # a shared kernel would let later sessions ride the first one's solves.
    return ExperimentSession.from_device(
        device,
        resolution=resolution,
        seed=seed,
        faults=faults,
        probe_retry=probe_retry,
        kernel_cache=False,
    )


def _time_full_grid(faults, probe_retry, resolution, repeats=3):
    """Best-of-N wall time of a full-grid acquisition, plus the session."""
    best = float("inf")
    session = None
    for _ in range(repeats):
        session = _session(faults=faults, probe_retry=probe_retry, resolution=resolution)
        started = time.perf_counter()
        session.meter.acquire_full_grid()
        best = min(best, time.perf_counter() - started)
    return best, session


@pytest.mark.benchmark(group="faults")
def test_rate_zero_wrapper_overhead(benchmark, write_report):
    """Armed-but-silent fault wrapping stays bit-identical and cheap."""
    clean = _session()
    clean_image = clean.meter.acquire_full_grid()

    def wrapped_acquire():
        session = _session(faults=RATE_ZERO, probe_retry=RETRY)
        return session.meter.acquire_full_grid()

    image = benchmark.pedantic(wrapped_acquire, rounds=3, iterations=1)
    np.testing.assert_array_equal(image, clean_image)
    write_report(
        "faults.txt",
        "rate-0 fault wrapping: full grid bit-identical to the clean path",
    )


@pytest.mark.benchmark(group="faults")
def test_chaos_retry_path(benchmark):
    """A flaky-lab acquisition completes, paying only for its retries."""

    def chaotic_acquire():
        session = _session(faults="flaky-lab", probe_retry=RETRY)
        session.meter.acquire_full_grid()
        return session

    session = benchmark.pedantic(chaotic_acquire, rounds=3, iterations=1)
    assert session.meter.n_probe_retries > 0
    assert session.meter.n_probes_exhausted == 0


def run_suite(resolution: int, repeats: int) -> dict:
    """Measure the three paths and return the perf-trajectory payload."""
    clean_s, clean = _time_full_grid(None, None, resolution, repeats)
    rate0_s, rate0 = _time_full_grid(RATE_ZERO, RETRY, resolution, repeats)
    chaos_s, chaos = _time_full_grid("flaky-lab", RETRY, resolution, repeats)

    identical = bool(
        np.array_equal(
            _session(resolution=resolution).meter.acquire_full_grid(),
            _session(
                faults=RATE_ZERO, probe_retry=RETRY, resolution=resolution
            ).meter.acquire_full_grid(),
        )
    )
    return {
        "bench": "faults",
        "resolution": resolution,
        "n_probes": int(clean.meter.n_probes),
        "clean_s": round(clean_s, 4),
        "rate_zero_s": round(rate0_s, 4),
        "chaos_s": round(chaos_s, 4),
        "rate_zero_overhead_x": round(rate0_s / clean_s, 3),
        "chaos_overhead_x": round(chaos_s / clean_s, 3),
        "rate_zero_bit_identical": identical,
        "chaos_probe_retries": int(chaos.meter.n_probe_retries),
        "chaos_fault_events": int(chaos.meter.n_fault_events),
        "chaos_fault_delay_s": round(float(chaos.meter.fault_delay_s), 3),
        "rate_zero_retries": int(rate0.meter.n_probe_retries),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small grid (resolution 32, 1 repeat) for CI",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write the measurements as JSON (the persisted perf trajectory)",
    )
    args = parser.parse_args(argv)

    resolution = 32 if args.smoke else 63
    repeats = 1 if args.smoke else 3
    stats = run_suite(resolution, repeats)

    print(f"fault-injection overhead (full grid, resolution {resolution}):")
    print(f"  clean path:        {stats['clean_s'] * 1e3:8.1f} ms")
    print(f"  rate-0 wrapped:    {stats['rate_zero_s'] * 1e3:8.1f} ms "
          f"({stats['rate_zero_overhead_x']:.2f}x, "
          f"bit-identical: {stats['rate_zero_bit_identical']})")
    print(f"  flaky-lab chaos:   {stats['chaos_s'] * 1e3:8.1f} ms "
          f"({stats['chaos_overhead_x']:.2f}x, "
          f"{stats['chaos_probe_retries']} retries, "
          f"{stats['chaos_fault_events']} fault events)")

    if not stats["rate_zero_bit_identical"]:
        print("ERROR: rate-0 fault wrapping perturbed the measured image")
        return 1
    if stats["rate_zero_retries"] != 0:
        print("ERROR: rate-0 models spent retries")
        return 1

    if args.json:
        emit_json(stats, args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
