"""Benchmark: parallel batch-tuning campaign vs sequential execution.

The campaign engine's contract is twofold: per-job results are bit-identical
whether the grid runs on one worker or many (seeds are bound to jobs at grid
expansion, not to execution order), and on a multi-core machine the wall
time drops roughly with the worker count because the jobs are independent
CPU-bound extractions fanned out over a process pool.

A second section measures the kernel cache on a repeat-heavy serial campaign
(same device, window, and resolution re-measured across repeats and noise
scales, only the seeds differing): the cached run must reproduce the
uncached records exactly and cut wall time by >= 2x, because the noise-free
physics kernel is solved once and every later job re-reads it.

This file is both a pytest benchmark (like its siblings) and a standalone
script for CI smoke runs and the persisted perf trajectory::

    PYTHONPATH=src python benchmarks/bench_campaign.py --quick
    PYTHONPATH=src python benchmarks/bench_campaign.py --jobs 50 --workers 4
"""

from __future__ import annotations

import argparse
import sys
import time

import pytest
from _emit import emit_json

from repro.campaign import CampaignGrid, DeviceSpec, TuningCampaign
from repro.kernelcache import clear_kernel_cache, configure_kernel_cache

#: Wall-time speedup the kernel cache must reach on the repeat-heavy grid.
TARGET_CACHE_SPEEDUP = 2.0


def build_grid(n_repeats: int, seed: int = 2024) -> CampaignGrid:
    """A campaign grid over two device families and two noise conditions.

    Two double dots contribute one gate pair each and the 4-dot linear array
    contributes three, so with two noise scales the grid expands into
    ``(2 + 3) * 2 * n_repeats = 10 * n_repeats`` jobs.
    """
    return CampaignGrid(
        devices=(
            DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)),
            DeviceSpec.of("double_dot", cross_coupling=(0.32, 0.27)),
            DeviceSpec.of("linear_array", n_dots=4),
        ),
        resolutions=(63,),
        noise_scales=(0.0, 1.0),
        methods=("fast",),
        n_repeats=n_repeats,
        seed=seed,
    )


def records_identical(a, b) -> bool:
    """Bit-identical per-job extraction results (the determinism contract)."""
    if len(a.records) != len(b.records):
        return False
    return all(
        ra.job_id == rb.job_id
        and ra.success == rb.success
        and ra.alpha_12 == rb.alpha_12
        and ra.alpha_21 == rb.alpha_21
        and ra.n_probes == rb.n_probes
        and ra.sim_elapsed_s == rb.sim_elapsed_s
        for ra, rb in zip(a.records, b.records)
    )


def build_cache_grid(n_repeats: int, resolution: int, seed: int = 2024) -> CampaignGrid:
    """A repeat-heavy grid where every job shares one physics kernel.

    A single 6-dot chain at one resolution: the dense-grid baseline method
    re-rasterises the same window for every repeat and noise scale, so the
    noise-free kernel is the dominant cost and the cache's best case.
    """
    return CampaignGrid(
        devices=(DeviceSpec.of("linear_array", n_dots=6),),
        resolutions=(resolution,),
        noise_scales=(0.0, 1.0),
        methods=("baseline",),
        n_repeats=n_repeats,
        seed=seed,
    )


def compare_kernel_cache(n_repeats: int, resolution: int) -> dict:
    """Serial repeat-heavy campaign with the kernel cache off, then on.

    Returns wall times, the speedup, and record equality.  The process-wide
    cache is cleared before each run and left enabled (the library default)
    afterwards.
    """
    grid = build_cache_grid(n_repeats, resolution)

    def run(enabled: bool):
        clear_kernel_cache()
        configure_kernel_cache(enabled=enabled)
        started = time.perf_counter()
        result = TuningCampaign(grid, backend="serial").run()
        return result, time.perf_counter() - started

    try:
        uncached, uncached_s = run(enabled=False)
        cached, cached_s = run(enabled=True)
    finally:
        clear_kernel_cache()
        configure_kernel_cache(enabled=True)
    return {
        "cache_jobs": grid.n_jobs,
        "cache_resolution": resolution,
        "cache_off_s": round(uncached_s, 4),
        "cache_on_s": round(cached_s, 4),
        "cache_speedup_x": round(uncached_s / max(cached_s, 1e-12), 2),
        "cache_records_identical": records_identical(uncached, cached),
    }


@pytest.mark.benchmark(group="campaign")
def test_kernel_cache_records_identical(write_report):
    """Cached and uncached campaigns agree record for record."""
    stats = compare_kernel_cache(n_repeats=2, resolution=40)
    write_report(
        "campaign_cache.txt",
        "\n".join(
            [
                f"repeat-heavy grid: {stats['cache_jobs']} jobs at "
                f"{stats['cache_resolution']}x{stats['cache_resolution']}",
                f"cache off: {stats['cache_off_s']:.3f}s",
                f"cache on:  {stats['cache_on_s']:.3f}s "
                f"({stats['cache_speedup_x']:.2f}x)",
                f"records identical: {stats['cache_records_identical']}",
            ]
        ),
    )
    assert stats["cache_records_identical"]


@pytest.mark.benchmark(group="campaign")
def test_campaign_parallel_determinism(benchmark, write_report):
    """Sequential and 2-worker campaigns agree job for job."""
    grid = build_grid(n_repeats=1)
    sequential = TuningCampaign(grid, n_workers=1).run()
    parallel = benchmark.pedantic(
        lambda: TuningCampaign(grid, n_workers=2).run(), rounds=1, iterations=1
    )
    write_report("campaign.txt", parallel.format_report())

    assert records_identical(sequential, parallel)
    assert sequential.n_jobs == grid.n_jobs
    assert sequential.success_rate > 0.8
    # Aggregates derive from the same records, so they agree exactly.
    assert sequential.total_probes == parallel.total_probes
    assert sequential.summary()["failure_taxonomy"] == parallel.summary()["failure_taxonomy"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small smoke grid (8 jobs, 2 workers) for CI",
    )
    parser.add_argument("--jobs", type=int, default=56, help="approximate job count")
    parser.add_argument("--workers", type=int, default=4, help="parallel worker count")
    parser.add_argument(
        "--json", metavar="PATH",
        help="write the measurements as JSON (the persisted perf trajectory)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        grid = build_grid(n_repeats=1)
        workers = 2
    else:
        # 10 jobs per repeat (5 gate pairs x 2 noise scales).
        grid = build_grid(n_repeats=max(1, args.jobs // 10))
        workers = args.workers

    print(f"campaign grid: {grid.n_jobs} jobs, comparing n_workers=1 vs {workers}")
    sequential = TuningCampaign(grid, n_workers=1).run()
    parallel = TuningCampaign(grid, n_workers=workers).run()

    print(parallel.format_report(max_rows=10))
    print()
    print(f"sequential wall time: {sequential.wall_time_s:.2f}s")
    print(f"parallel wall time:   {parallel.wall_time_s:.2f}s "
          f"({sequential.wall_time_s / max(parallel.wall_time_s, 1e-9):.2f}x)")

    if not records_identical(sequential, parallel):
        print("ERROR: parallel records differ from the sequential reference")
        return 1
    print("determinism check: sequential and parallel records are identical")

    cache = compare_kernel_cache(
        n_repeats=2 if args.quick else 8,
        resolution=40 if args.quick else 100,
    )
    print(f"kernel cache (serial, {cache['cache_jobs']} repeat-heavy jobs at "
          f"{cache['cache_resolution']}x{cache['cache_resolution']}):")
    print(f"  cache off: {cache['cache_off_s']:.2f}s")
    print(f"  cache on:  {cache['cache_on_s']:.2f}s "
          f"({cache['cache_speedup_x']:.2f}x)")

    if not cache["cache_records_identical"]:
        print("ERROR: cached records differ from the uncached reference")
        return 1
    print("determinism check: cached and uncached records are identical")
    if not args.quick and cache["cache_speedup_x"] < TARGET_CACHE_SPEEDUP:
        print(f"ERROR: cache speedup {cache['cache_speedup_x']:.2f}x below the "
              f"{TARGET_CACHE_SPEEDUP:.0f}x target")
        return 1

    if args.json:
        emit_json(
            {
                "bench": "campaign",
                "n_jobs": grid.n_jobs,
                "workers": workers,
                "sequential_s": round(sequential.wall_time_s, 4),
                "parallel_s": round(parallel.wall_time_s, 4),
                "parallel_speedup_x": round(
                    sequential.wall_time_s / max(parallel.wall_time_s, 1e-9), 2
                ),
                "records_identical": True,
                **cache,
            },
            args.json,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
