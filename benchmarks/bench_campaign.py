"""Benchmark: parallel batch-tuning campaign vs sequential execution.

The campaign engine's contract is twofold: per-job results are bit-identical
whether the grid runs on one worker or many (seeds are bound to jobs at grid
expansion, not to execution order), and on a multi-core machine the wall
time drops roughly with the worker count because the jobs are independent
CPU-bound extractions fanned out over a process pool.

This file is both a pytest benchmark (like its siblings) and a standalone
script for CI smoke runs::

    PYTHONPATH=src python benchmarks/bench_campaign.py --quick
    PYTHONPATH=src python benchmarks/bench_campaign.py --jobs 50 --workers 4
"""

from __future__ import annotations

import argparse
import sys

import pytest

from repro.campaign import CampaignGrid, DeviceSpec, TuningCampaign


def build_grid(n_repeats: int, seed: int = 2024) -> CampaignGrid:
    """A campaign grid over two device families and two noise conditions.

    Two double dots contribute one gate pair each and the 4-dot linear array
    contributes three, so with two noise scales the grid expands into
    ``(2 + 3) * 2 * n_repeats = 10 * n_repeats`` jobs.
    """
    return CampaignGrid(
        devices=(
            DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)),
            DeviceSpec.of("double_dot", cross_coupling=(0.32, 0.27)),
            DeviceSpec.of("linear_array", n_dots=4),
        ),
        resolutions=(63,),
        noise_scales=(0.0, 1.0),
        methods=("fast",),
        n_repeats=n_repeats,
        seed=seed,
    )


def records_identical(a, b) -> bool:
    """Bit-identical per-job extraction results (the determinism contract)."""
    if len(a.records) != len(b.records):
        return False
    return all(
        ra.job_id == rb.job_id
        and ra.success == rb.success
        and ra.alpha_12 == rb.alpha_12
        and ra.alpha_21 == rb.alpha_21
        and ra.n_probes == rb.n_probes
        and ra.sim_elapsed_s == rb.sim_elapsed_s
        for ra, rb in zip(a.records, b.records)
    )


@pytest.mark.benchmark(group="campaign")
def test_campaign_parallel_determinism(benchmark, write_report):
    """Sequential and 2-worker campaigns agree job for job."""
    grid = build_grid(n_repeats=1)
    sequential = TuningCampaign(grid, n_workers=1).run()
    parallel = benchmark.pedantic(
        lambda: TuningCampaign(grid, n_workers=2).run(), rounds=1, iterations=1
    )
    write_report("campaign.txt", parallel.format_report())

    assert records_identical(sequential, parallel)
    assert sequential.n_jobs == grid.n_jobs
    assert sequential.success_rate > 0.8
    # Aggregates derive from the same records, so they agree exactly.
    assert sequential.total_probes == parallel.total_probes
    assert sequential.summary()["failure_taxonomy"] == parallel.summary()["failure_taxonomy"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small smoke grid (8 jobs, 2 workers) for CI",
    )
    parser.add_argument("--jobs", type=int, default=56, help="approximate job count")
    parser.add_argument("--workers", type=int, default=4, help="parallel worker count")
    args = parser.parse_args(argv)

    if args.quick:
        grid = build_grid(n_repeats=1)
        workers = 2
    else:
        # 10 jobs per repeat (5 gate pairs x 2 noise scales).
        grid = build_grid(n_repeats=max(1, args.jobs // 10))
        workers = args.workers

    print(f"campaign grid: {grid.n_jobs} jobs, comparing n_workers=1 vs {workers}")
    sequential = TuningCampaign(grid, n_workers=1).run()
    parallel = TuningCampaign(grid, n_workers=workers).run()

    print(parallel.format_report(max_rows=10))
    print()
    print(f"sequential wall time: {sequential.wall_time_s:.2f}s")
    print(f"parallel wall time:   {parallel.wall_time_s:.2f}s "
          f"({sequential.wall_time_s / max(parallel.wall_time_s, 1e-9):.2f}x)")

    if not records_identical(sequential, parallel):
        print("ERROR: parallel records differ from the sequential reference")
        return 1
    print("determinism check: sequential and parallel records are identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
