"""Computational cost of the Canny + Hough baseline stages (supporting).

Times the image-processing half of the baseline on benchmark 6 (100x100):
Canny edge detection and the Hough accumulator + peak picking.  Together with
``bench_extraction_stages.py`` this shows that *neither* method is limited by
computation — the difference in Table 1 comes entirely from how many points
each method asks the device for.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baseline import CannyEdgeDetector, HoughTransform
from repro.datasets import load_benchmark


@pytest.fixture(scope="module")
def image() -> np.ndarray:
    return load_benchmark(6).data


@pytest.fixture(scope="module")
def edges(image) -> np.ndarray:
    return CannyEdgeDetector().detect(image)


@pytest.mark.benchmark(group="baseline-stages")
def test_canny_compute_time(benchmark, image):
    """Canny edge detection on a 100x100 diagram."""
    edge_map = benchmark(lambda: CannyEdgeDetector().detect(image))
    assert edge_map.sum() > 30


@pytest.mark.benchmark(group="baseline-stages")
def test_hough_compute_time(benchmark, edges):
    """Hough accumulation + peak picking on the Canny edge map."""
    lines = benchmark(lambda: HoughTransform().find_lines(edges))
    assert len(lines) >= 2


@pytest.mark.benchmark(group="baseline-stages")
def test_full_image_pipeline_compute_time(benchmark, image):
    """Canny followed by Hough, i.e. everything after the full scan."""

    def run():
        return HoughTransform().find_lines(CannyEdgeDetector().detect(image))

    lines = benchmark(run)
    assert lines
