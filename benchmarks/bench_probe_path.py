"""Benchmark: batched probe path vs the scalar per-pixel loop.

The batch probe path (`ChargeSensorMeter.get_currents` feeding a vectorised
`DeviceBackend.currents` physics kernel) must be *semantically invisible*:
bit-identical currents, probe counts, cache hits, clock charges, and log
contents compared with looping `get_current` pixel by pixel.  Its only
observable effect is wall-clock speed — the full-grid acquisition that
dominates the Hough baseline drops from 10,000 Python-level probes to one
vectorised evaluation, targeting >= 10x on a 100x100 double-dot device grid.

This file is both a pytest benchmark (like its siblings) and a standalone
script for CI smoke runs::

    PYTHONPATH=src python benchmarks/bench_probe_path.py --smoke
    PYTHONPATH=src python benchmarks/bench_probe_path.py --resolution 100
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np
import pytest

from repro.instrument import ChargeSensorMeter, DeviceBackend
from repro.physics import DotArrayDevice, WhiteNoise

#: Speedup the batched full-grid acquisition must reach at 100x100.
TARGET_SPEEDUP = 10.0


def build_meter(resolution: int, seed: int = 7) -> ChargeSensorMeter:
    """A meter over a noisy double-dot device backend at the given resolution."""
    device = DotArrayDevice.double_dot(cross_coupling=(0.25, 0.22))
    xs = np.linspace(0.0, 0.05, resolution)
    ys = np.linspace(0.0, 0.05, resolution)
    backend = DeviceBackend(device, xs, ys, noise=WhiteNoise(0.05), seed=seed)
    return ChargeSensorMeter(backend)


def scalar_acquire_full_grid(meter: ChargeSensorMeter) -> np.ndarray:
    """The pre-batching acquisition: one Python-level probe per pixel."""
    rows, cols = meter.shape
    image = np.zeros((rows, cols), dtype=float)
    for row in range(rows):
        for col in range(cols):
            image[row, col] = meter.get_current(row, col)
    return image


def paths_identical(batch_meter, scalar_meter, batch_image, scalar_image) -> list[str]:
    """All ways the two paths could diverge; empty means bit-identical."""
    problems: list[str] = []
    if not np.array_equal(batch_image, scalar_image):
        problems.append("acquired images differ")
    if batch_meter.n_probes != scalar_meter.n_probes:
        problems.append(
            f"n_probes differ: {batch_meter.n_probes} vs {scalar_meter.n_probes}"
        )
    if batch_meter.n_requests != scalar_meter.n_requests:
        problems.append(
            f"n_requests differ: {batch_meter.n_requests} vs {scalar_meter.n_requests}"
        )
    if batch_meter.elapsed_s != scalar_meter.elapsed_s:
        problems.append(
            f"simulated time differs: {batch_meter.elapsed_s} vs {scalar_meter.elapsed_s}"
        )
    batch_log = batch_meter.log.as_arrays()
    scalar_log = scalar_meter.log.as_arrays()
    for column in batch_log:
        if not np.array_equal(batch_log[column], scalar_log[column]):
            problems.append(f"log column {column!r} differs")
    return problems


def compare_paths(resolution: int) -> tuple[float, float, list[str]]:
    """Time both acquisition paths; returns (scalar_s, batch_s, problems)."""
    scalar_meter = build_meter(resolution)
    start = time.perf_counter()
    scalar_image = scalar_acquire_full_grid(scalar_meter)
    scalar_s = time.perf_counter() - start

    batch_meter = build_meter(resolution)
    start = time.perf_counter()
    batch_image = batch_meter.acquire_full_grid()
    batch_s = time.perf_counter() - start

    problems = paths_identical(batch_meter, scalar_meter, batch_image, scalar_image)
    return scalar_s, batch_s, problems


@pytest.mark.benchmark(group="probe-path")
def test_batched_full_grid_speedup(benchmark, write_report):
    """Batched acquisition is bit-identical to, and >= 10x faster than, the loop."""
    resolution = 100
    scalar_meter = build_meter(resolution)
    start = time.perf_counter()
    scalar_image = scalar_acquire_full_grid(scalar_meter)
    scalar_s = time.perf_counter() - start

    batch_meter = build_meter(resolution)

    def run_batch():
        batch_meter.reset()
        return batch_meter.acquire_full_grid()

    benchmark(run_batch)
    # Explicit timing (not benchmark.stats) so the test also runs under
    # --benchmark-disable; the acquisition is deterministic across resets.
    start = time.perf_counter()
    batch_image = run_batch()
    batch_s = time.perf_counter() - start

    problems = paths_identical(batch_meter, scalar_meter, batch_image, scalar_image)
    speedup = scalar_s / max(batch_s, 1e-12)
    write_report(
        "probe_path.txt",
        "\n".join(
            [
                f"grid: {resolution}x{resolution} double-dot DeviceBackend",
                f"scalar loop: {scalar_s:.3f}s",
                f"batched:     {batch_s:.3f}s",
                f"speedup:     {speedup:.1f}x",
                f"bit-identical: {not problems}",
            ]
        ),
    )
    assert not problems, problems
    assert speedup >= TARGET_SPEEDUP


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small grid for CI: checks equivalence, skips the 10x assertion",
    )
    parser.add_argument(
        "--resolution", type=int, default=100,
        help="grid resolution per axis (default 100, the paper's baseline)",
    )
    args = parser.parse_args(argv)

    resolution = 40 if args.smoke else args.resolution
    print(f"probe path: {resolution}x{resolution} double-dot DeviceBackend grid")
    scalar_s, batch_s, problems = compare_paths(resolution)
    speedup = scalar_s / max(batch_s, 1e-12)
    print(f"scalar loop: {scalar_s:.3f}s")
    print(f"batched:     {batch_s:.3f}s  ({speedup:.1f}x)")

    if problems:
        for problem in problems:
            print(f"ERROR: {problem}")
        return 1
    print("equivalence check: batched and scalar paths are bit-identical")

    if not args.smoke and speedup < TARGET_SPEEDUP:
        print(f"ERROR: speedup {speedup:.1f}x below the {TARGET_SPEEDUP:.0f}x target")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
