"""Benchmark: batched probe path vs the scalar per-pixel loop.

The batch probe path (`ChargeSensorMeter.get_currents` feeding a vectorised
`DeviceBackend.currents` physics kernel) must be *semantically invisible*:
bit-identical currents, probe counts, cache hits, clock charges, and log
contents compared with looping `get_current` pixel by pixel.  Its only
observable effect is wall-clock speed — the full-grid acquisition that
dominates the Hough baseline drops from 10,000 Python-level probes to one
vectorised evaluation, targeting >= 10x on a 100x100 double-dot device grid.

A second section measures the solver's bound-certified pruning on a larger
array: rasterising a 6-dot chain's default CSD window must touch >= 5x fewer
lattice scores than full enumeration while staying exactly equal, occupation
by occupation.

This file is both a pytest benchmark (like its siblings) and a standalone
script for CI smoke runs and the persisted perf trajectory::

    PYTHONPATH=src python benchmarks/bench_probe_path.py --smoke
    PYTHONPATH=src python benchmarks/bench_probe_path.py --resolution 100 --json out.json
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np
import pytest
from _emit import emit_json

from repro.instrument import ChargeSensorMeter, DeviceBackend
from repro.physics import ChargeStateSolver, CSDSimulator, DotArrayDevice, WhiteNoise

#: Speedup the batched full-grid acquisition must reach at 100x100.
TARGET_SPEEDUP = 10.0

#: Lattice-score reduction the pruned solver must reach on a 6-dot chain's
#: default window at 100x100 (it lands around 30x in practice).
TARGET_PRUNE_RATIO = 5.0

#: Dots in the pruning-section device; 6 gives a 4096-state lattice.
PRUNE_DOTS = 6


def build_meter(resolution: int, seed: int = 7) -> ChargeSensorMeter:
    """A meter over a noisy double-dot device backend at the given resolution.

    The kernel cache is pinned off: this benchmark times the probe *path*
    (batch vs scalar Python overhead), and a shared kernel would let the
    second meter ride the first one's solves.
    """
    device = DotArrayDevice.double_dot(cross_coupling=(0.25, 0.22))
    xs = np.linspace(0.0, 0.05, resolution)
    ys = np.linspace(0.0, 0.05, resolution)
    backend = DeviceBackend(
        device, xs, ys, noise=WhiteNoise(0.05), seed=seed, kernel_cache=False
    )
    return ChargeSensorMeter(backend)


def scalar_acquire_full_grid(meter: ChargeSensorMeter) -> np.ndarray:
    """The pre-batching acquisition: one Python-level probe per pixel."""
    rows, cols = meter.shape
    image = np.zeros((rows, cols), dtype=float)
    for row in range(rows):
        for col in range(cols):
            image[row, col] = meter.get_current(row, col)
    return image


def paths_identical(batch_meter, scalar_meter, batch_image, scalar_image) -> list[str]:
    """All ways the two paths could diverge; empty means bit-identical."""
    problems: list[str] = []
    if not np.array_equal(batch_image, scalar_image):
        problems.append("acquired images differ")
    if batch_meter.n_probes != scalar_meter.n_probes:
        problems.append(
            f"n_probes differ: {batch_meter.n_probes} vs {scalar_meter.n_probes}"
        )
    if batch_meter.n_requests != scalar_meter.n_requests:
        problems.append(
            f"n_requests differ: {batch_meter.n_requests} vs {scalar_meter.n_requests}"
        )
    if batch_meter.elapsed_s != scalar_meter.elapsed_s:
        problems.append(
            f"simulated time differs: {batch_meter.elapsed_s} vs {scalar_meter.elapsed_s}"
        )
    batch_log = batch_meter.log.as_arrays()
    scalar_log = scalar_meter.log.as_arrays()
    for column in batch_log:
        if not np.array_equal(batch_log[column], scalar_log[column]):
            problems.append(f"log column {column!r} differs")
    return problems


def compare_paths(resolution: int) -> tuple[float, float, list[str]]:
    """Time both acquisition paths; returns (scalar_s, batch_s, problems)."""
    scalar_meter = build_meter(resolution)
    start = time.perf_counter()
    scalar_image = scalar_acquire_full_grid(scalar_meter)
    scalar_s = time.perf_counter() - start

    batch_meter = build_meter(resolution)
    start = time.perf_counter()
    batch_image = batch_meter.acquire_full_grid()
    batch_s = time.perf_counter() - start

    problems = paths_identical(batch_meter, scalar_meter, batch_image, scalar_image)
    return scalar_s, batch_s, problems


def compare_pruning(resolution: int, n_dots: int = PRUNE_DOTS) -> dict:
    """Rasterise one device window with and without solver pruning.

    Returns the comparison payload: wall times, lattice-score counts for both
    solvers (the pruned side pays for bound evaluations too, so its count is
    ``n_state_scores + n_bound_scores``), and exact equality of the maps.
    """
    device = DotArrayDevice.linear_array(n_dots)
    window = CSDSimulator(device).default_window()
    (x_min, x_max), (y_min, y_max) = window
    xs = np.linspace(x_min, x_max, resolution)
    ys = np.linspace(y_min, y_max, resolution)

    def rasterise(prune: bool) -> tuple[np.ndarray, float, int]:
        solver = ChargeStateSolver(
            device.capacitance,
            max_electrons_per_dot=device.solver.max_electrons_per_dot,
            prune=prune,
        )
        start = time.perf_counter()
        occupations = solver.occupation_map("P1", "P2", xs, ys)
        elapsed = time.perf_counter() - start
        stats = solver.stats
        return occupations, elapsed, stats.n_state_scores + stats.n_bound_scores

    full_map, full_s, full_scores = rasterise(prune=False)
    pruned_map, pruned_s, pruned_scores = rasterise(prune=True)
    return {
        "prune_dots": n_dots,
        "prune_resolution": resolution,
        "prune_lattice_states": int(device.solver.n_lattice_states),
        "prune_full_s": round(full_s, 4),
        "prune_pruned_s": round(pruned_s, 4),
        "prune_full_scores": int(full_scores),
        "prune_pruned_scores": int(pruned_scores),
        "prune_score_ratio_x": round(full_scores / max(pruned_scores, 1), 2),
        "prune_speedup_x": round(full_s / max(pruned_s, 1e-12), 2),
        "prune_bit_identical": bool(np.array_equal(full_map, pruned_map)),
    }


@pytest.mark.benchmark(group="probe-path")
def test_pruned_raster_identical_and_lean(write_report):
    """Pruned rasterisation is exactly equal and scores far fewer states."""
    stats = compare_pruning(resolution=60)
    write_report(
        "solver_pruning.txt",
        "\n".join(
            [
                f"device: {stats['prune_dots']}-dot chain, "
                f"{stats['prune_lattice_states']} lattice states",
                f"grid: {stats['prune_resolution']}x{stats['prune_resolution']} "
                "default CSD window",
                f"full enumeration: {stats['prune_full_scores']} scores",
                f"pruned:           {stats['prune_pruned_scores']} scores "
                f"({stats['prune_score_ratio_x']:.1f}x fewer)",
                f"bit-identical: {stats['prune_bit_identical']}",
            ]
        ),
    )
    assert stats["prune_bit_identical"]
    assert stats["prune_score_ratio_x"] >= TARGET_PRUNE_RATIO


@pytest.mark.benchmark(group="probe-path")
def test_batched_full_grid_speedup(benchmark, write_report):
    """Batched acquisition is bit-identical to, and >= 10x faster than, the loop."""
    resolution = 100
    scalar_meter = build_meter(resolution)
    start = time.perf_counter()
    scalar_image = scalar_acquire_full_grid(scalar_meter)
    scalar_s = time.perf_counter() - start

    batch_meter = build_meter(resolution)

    def run_batch():
        batch_meter.reset()
        return batch_meter.acquire_full_grid()

    benchmark(run_batch)
    # Explicit timing (not benchmark.stats) so the test also runs under
    # --benchmark-disable; the acquisition is deterministic across resets.
    start = time.perf_counter()
    batch_image = run_batch()
    batch_s = time.perf_counter() - start

    problems = paths_identical(batch_meter, scalar_meter, batch_image, scalar_image)
    speedup = scalar_s / max(batch_s, 1e-12)
    write_report(
        "probe_path.txt",
        "\n".join(
            [
                f"grid: {resolution}x{resolution} double-dot DeviceBackend",
                f"scalar loop: {scalar_s:.3f}s",
                f"batched:     {batch_s:.3f}s",
                f"speedup:     {speedup:.1f}x",
                f"bit-identical: {not problems}",
            ]
        ),
    )
    assert not problems, problems
    assert speedup >= TARGET_SPEEDUP


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small grid for CI: checks equivalence, skips the 10x assertion",
    )
    parser.add_argument(
        "--resolution", type=int, default=100,
        help="grid resolution per axis (default 100, the paper's baseline)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write the measurements as JSON (the persisted perf trajectory)",
    )
    args = parser.parse_args(argv)

    resolution = 40 if args.smoke else args.resolution
    print(f"probe path: {resolution}x{resolution} double-dot DeviceBackend grid")
    scalar_s, batch_s, problems = compare_paths(resolution)
    speedup = scalar_s / max(batch_s, 1e-12)
    print(f"scalar loop: {scalar_s:.3f}s")
    print(f"batched:     {batch_s:.3f}s  ({speedup:.1f}x)")

    if problems:
        for problem in problems:
            print(f"ERROR: {problem}")
        return 1
    print("equivalence check: batched and scalar paths are bit-identical")

    if not args.smoke and speedup < TARGET_SPEEDUP:
        print(f"ERROR: speedup {speedup:.1f}x below the {TARGET_SPEEDUP:.0f}x target")
        return 1

    prune = compare_pruning(resolution)
    print(f"solver pruning: {prune['prune_dots']}-dot chain "
          f"({prune['prune_lattice_states']} lattice states), "
          f"{resolution}x{resolution} default CSD window")
    print(f"  full enumeration: {prune['prune_full_s']:.3f}s, "
          f"{prune['prune_full_scores']} scores")
    print(f"  pruned:           {prune['prune_pruned_s']:.3f}s, "
          f"{prune['prune_pruned_scores']} scores "
          f"({prune['prune_score_ratio_x']:.1f}x fewer, "
          f"{prune['prune_speedup_x']:.1f}x faster)")

    if not prune["prune_bit_identical"]:
        print("ERROR: pruned solver diverged from full enumeration")
        return 1
    if not args.smoke and prune["prune_score_ratio_x"] < TARGET_PRUNE_RATIO:
        print(f"ERROR: score reduction {prune['prune_score_ratio_x']:.1f}x below "
              f"the {TARGET_PRUNE_RATIO:.0f}x target")
        return 1
    print("equivalence check: pruned and full solvers are bit-identical")

    if args.json:
        emit_json(
            {
                "bench": "probe_path",
                "resolution": resolution,
                "scalar_s": round(scalar_s, 4),
                "batch_s": round(batch_s, 4),
                "batch_speedup_x": round(speedup, 2),
                "batch_bit_identical": not problems,
                **prune,
            },
            args.json,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
