"""Ablation A1: the sweep directions and the erroneous-point filter (§4.3.2).

The paper motivates running *both* a row-major and a column-major sweep and
then filtering erroneous points.  This benchmark quantifies that design choice
on the ten non-pathological benchmarks of the suite by comparing

* the paper configuration (both sweeps + filter),
* row-major sweep only,
* column-major sweep only,
* both sweeps but no post-processing filter,

reporting success rate, mean coefficient error, and probe fraction for each.
The paper configuration must dominate (or tie) the single-sweep variants.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_ablation_sweeps


@pytest.mark.benchmark(group="ablation")
def test_ablation_sweeps(benchmark, write_report):
    """Compare sweep/filter variants over the ten workable benchmarks."""
    rows, report = benchmark.pedantic(run_ablation_sweeps, rounds=1, iterations=1)
    write_report("ablation_sweeps.txt", report)

    by_label = {row.label: row for row in rows}
    paper = by_label["both sweeps + filter (paper)"]
    row_only = by_label["row sweep only"]
    column_only = by_label["column sweep only"]
    no_filter = by_label["both sweeps, no filter"]

    assert paper.success_rate >= 0.9
    assert paper.success_rate >= row_only.success_rate
    assert paper.success_rate >= column_only.success_rate
    # Using both sweeps costs more probes than either single sweep.
    assert paper.mean_probe_fraction >= row_only.mean_probe_fraction
    assert paper.mean_probe_fraction >= column_only.mean_probe_fraction
    # The filter never hurts the success rate and does not change probe cost.
    assert paper.success_rate >= no_filter.success_rate
    assert paper.mean_probe_fraction == pytest.approx(
        no_filter.mean_probe_fraction, rel=0.05
    )
