"""Experiment E1 + E3: reproduce Table 1 and the headline speedup claims.

Runs the fast virtual gate extraction and the Canny+Hough baseline over all
twelve qflow-like benchmarks, regenerates the Table 1 rows (success/fail,
points probed, simulated runtime, speedup), writes the table to
``benchmarks/results/table1.txt`` / ``table1.csv`` and asserts the qualitative
structure the paper reports:

* the fast method succeeds on at least as many benchmarks as the baseline,
* the two pathological-noise benchmarks defeat both methods,
* benchmark 7 splits the methods (fast succeeds, baseline fails),
* the fast method probes ~5-20% of the pixels and is several times faster,
  with the largest speedups on the largest scans.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    format_accuracy_table,
    format_summary,
    format_table1,
    summarize_suite,
    table1_rows,
    TABLE1_HEADERS,
)
from repro.analysis.comparison import ComparisonRunner
from repro.datasets import EXPECTED_BASELINE_ONLY_FAILURE, EXPECTED_HARD_FAILURES, load_suite
from repro.visualization import export_table_csv


@pytest.mark.benchmark(group="table1")
def test_table1_full_suite(benchmark, write_report, results_dir):
    """Regenerate Table 1 over the full twelve-benchmark suite."""
    suite = load_suite()
    runner = ComparisonRunner()

    records = benchmark.pedantic(lambda: runner.run_suite(suite), rounds=1, iterations=1)

    summary = summarize_suite(records)
    report = (
        format_table1(records)
        + "\n\n"
        + format_summary(summary)
        + "\n\n"
        + format_accuracy_table(records)
    )
    write_report("table1.txt", report)
    export_table_csv(results_dir / "table1.csv", TABLE1_HEADERS, table1_rows(records))

    # --- structural assertions mirroring the paper's Table 1 ---------------
    assert len(records) == 12
    assert summary.fast_successes >= summary.baseline_successes
    assert summary.fast_successes >= 9
    for index in EXPECTED_HARD_FAILURES:
        record = records[index - 1]
        assert not record.fast.success and not record.baseline.success
    split = records[EXPECTED_BASELINE_ONLY_FAILURE - 1]
    assert split.fast.success and not split.baseline.success

    successful = [r for r in records if r.fast.success]
    fractions = [r.fast.probe_fraction for r in successful]
    assert all(0.03 < fraction < 0.20 for fraction in fractions)
    speedups = [r.speedup for r in successful if r.speedup is not None]
    assert min(speedups) > 4.0
    assert max(speedups) > 12.0
    # The largest scans enjoy the largest speedups (the paper's 19.34x case).
    largest = max(successful, key=lambda r: r.resolution[0] * r.resolution[1])
    assert largest.speedup == pytest.approx(max(speedups), rel=0.01)
