"""Experiment E2: reproduce Figure 7 — the pixels probed on CSD 6 and CSD 10.

For each of the two benchmarks the paper shows, this benchmark runs the fast
extraction, exports the probed-pixel mask (and the underlying diagram) as an
``.npz`` file, renders an ASCII version of the scatter plot into
``benchmarks/results/figure7.txt``, and asserts the property the figure is
meant to demonstrate: the probed points concentrate around the two transition
lines and amount to roughly 10% of the diagram.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import run_figure7
from repro.datasets import load_benchmark
from repro.visualization import ascii_probe_map, export_probe_map


@pytest.mark.benchmark(group="figure7")
def test_figure7_probe_maps(benchmark, write_report, results_dir):
    """Regenerate the probed-point scatter of benchmarks 6 and 10."""
    results = benchmark.pedantic(lambda: run_figure7(indices=(6, 10)), rounds=1, iterations=1)

    sections = []
    for result in results:
        csd = load_benchmark(result.index)
        export_probe_map(
            results_dir / f"figure7_csd{result.index:02d}.npz", csd, result.probe_mask
        )
        rendering = ascii_probe_map(result.shape, result.probe_mask, max_rows=40, max_cols=80)
        sections.append(
            f"CSD {result.index} ({result.name}): {result.n_probes} probes "
            f"({100 * result.probe_fraction:.2f}% of {result.shape[0]}x{result.shape[1]})\n"
            + rendering
        )
    write_report("figure7.txt", "\n\n".join(sections))

    assert len(results) == 2
    for result in results:
        assert result.success
        assert 0.05 < result.probe_fraction < 0.18

        csd = load_benchmark(result.index)
        geometry = csd.geometry
        rows, cols = np.nonzero(result.probe_mask)
        vx = csd.x_voltages[cols]
        vy = csd.y_voltages[rows]
        d_steep = np.abs(
            vy - (geometry.crossing_y + geometry.slope_steep * (vx - geometry.crossing_x))
        )
        d_shallow = np.abs(
            vy - (geometry.crossing_y + geometry.slope_shallow * (vx - geometry.crossing_x))
        )
        nearest = np.minimum(d_steep, d_shallow)
        span = float(csd.y_voltages[-1] - csd.y_voltages[0])
        # Most probed pixels hug one of the two transition lines, unlike a
        # full raster scan where the same statistic would be ~25%.
        assert np.mean(nearest < 0.15 * span) > 0.5
