"""Benchmark: cluster backend scaling and work-steal latency.

Measures the two properties the multi-host backend exists for and persists
them as ``BENCH_10.json`` for :mod:`benchmarks.perf_gate`:

* **scaling** — one campaign of dwell-dominated jobs (each job sleeps a
  fixed instrument dwell, emulating the measurement-latency-bound probing
  a real lab campaign spends its wall clock on) run serially and on
  ``ClusterBackend`` at 1/2/4 local workers.  Dwell-bound jobs are the
  honest scaling workload for this benchmark's single-CPU CI boxes: unlike
  CPU-bound jobs, they parallelise on worker *processes* rather than
  cores, which is exactly the regime remote instrument-facing workers run
  in.  Wall clocks include worker spawn — the speedup reported is what a
  user actually observes end to end.
* **steal latency** — a coordinator with a deliberately front-loaded first
  lease (``initial_chunk`` = everything) and a late-joining second worker,
  so the second worker's very first grant must be served by stealing from
  the first.  Reports the request-to-re-lease latency from
  :class:`~repro.cluster.ClusterStats`.

Both sections assert value equivalence: every worker count must return
records identical to ``SerialBackend``.

This file is both a pytest benchmark (like its siblings) and a standalone
script for CI smoke runs and the persisted perf trajectory::

    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke
    PYTHONPATH=src python benchmarks/bench_cluster.py --json BENCH_10.json
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from dataclasses import dataclass

import pytest
from _emit import emit_json

from repro.cluster import ClusterBackend, Coordinator, worker_main
from repro.execution import AdaptiveChunkPolicy, SerialBackend

#: Wall-clock speedup 4 local workers must reach over 1 on the dwell grid.
TARGET_CLUSTER_SPEEDUP = 1.7


@dataclass(frozen=True)
class DwellJob:
    """A measurement-latency-bound job: one probe dwell, trivial compute."""

    job_id: int
    dwell_s: float


def dwell_runner(job: DwellJob) -> str:
    """Sleep the instrument dwell, return a deterministic record."""
    time.sleep(job.dwell_s)
    return f"probe-{job.job_id}"


def measure_scaling(
    n_jobs: int, dwell_s: float, worker_counts: tuple[int, ...] = (1, 2, 4)
) -> dict:
    """One dwell grid, serial and at each cluster width; spawn included."""
    jobs = tuple(DwellJob(job_id=i, dwell_s=dwell_s) for i in range(n_jobs))
    serial_records = dict(SerialBackend().submit(jobs, dwell_runner))
    stats: dict = {
        "scaling_jobs": n_jobs,
        "scaling_dwell_ms": round(dwell_s * 1000),
    }
    identical = True
    walls: dict[int, float] = {}
    for count in worker_counts:
        backend = ClusterBackend(n_workers=count)
        started = time.perf_counter()
        records = dict(backend.submit(jobs, dwell_runner))
        walls[count] = time.perf_counter() - started
        identical = identical and records == serial_records
        stats[f"scaling_wall_{count}w_s"] = round(walls[count], 4)
    stats["scaling_records_identical"] = identical
    base = walls[worker_counts[0]]
    for count in worker_counts[1:]:
        stats[f"scaling_speedup_{count}w_x"] = round(
            base / max(walls[count], 1e-12), 2
        )
    return stats


def measure_steal(n_jobs: int, dwell_s: float, join_delay_s: float = 0.3) -> dict:
    """Force a steal: worker one leases everything, worker two joins late.

    Workers run as in-process threads speaking the real TCP protocol (a
    dwell job sleeps, so threads parallelise it exactly like processes);
    the thread form pins the registration order, which is what makes the
    steal deterministic rather than a race against process spawn.
    """
    jobs = tuple(DwellJob(job_id=i, dwell_s=dwell_s) for i in range(n_jobs))
    serial_records = dict(SerialBackend().submit(jobs, dwell_runner))
    policy = AdaptiveChunkPolicy(
        initial_chunk=max(n_jobs, 1), max_chunk=max(n_jobs, 1)
    )
    coordinator = Coordinator(policy=policy)
    host, port = coordinator.address

    def serve() -> None:
        worker_main(host, port)

    workers = [threading.Thread(target=serve, daemon=True) for _ in range(2)]
    records: dict = {}
    started = time.perf_counter()
    try:
        workers[0].start()
        stream = coordinator.run(jobs, dwell_runner)
        joined = False
        for job_id, record in stream:
            records[job_id] = record
            if not joined and time.perf_counter() - started >= join_delay_s:
                workers[1].start()
                joined = True
    finally:
        coordinator.close()
    wall_s = time.perf_counter() - started
    for worker in workers:
        if worker.ident is not None:
            worker.join(timeout=10.0)
    stats = coordinator.stats
    return {
        "steal_jobs": n_jobs,
        "steal_records_identical": records == serial_records,
        "steals_observed": stats.n_steal_requests >= 1 and stats.n_stolen_jobs >= 1,
        "steal_stolen_jobs": stats.n_stolen_jobs,
        "steal_latency_ms": round(stats.steal_latency_s * 1000, 2),
        "steal_wall_s": round(wall_s, 4),
    }


def run_suite(smoke: bool) -> dict:
    """Measure both sections and return the perf-trajectory payload."""
    scaling = measure_scaling(
        n_jobs=8 if smoke else 40, dwell_s=0.05 if smoke else 0.3
    )
    steal = measure_steal(
        n_jobs=8 if smoke else 20,
        dwell_s=0.05 if smoke else 0.1,
        join_delay_s=0.1 if smoke else 0.3,
    )
    return {"bench": "cluster", **scaling, **steal}


@pytest.mark.benchmark(group="cluster")
def test_steal_serves_a_late_worker(write_report):
    """A late-joining worker is fed by stealing, without changing records."""
    stats = measure_steal(n_jobs=8, dwell_s=0.05, join_delay_s=0.1)
    write_report(
        "cluster_steal.txt",
        "\n".join(
            [
                f"dwell grid: {stats['steal_jobs']} jobs",
                f"stolen jobs: {stats['steal_stolen_jobs']}",
                f"steal latency: {stats['steal_latency_ms']:.2f} ms",
                f"records identical: {stats['steal_records_identical']}",
            ]
        ),
    )
    assert stats["steals_observed"]
    assert stats["steal_records_identical"]


@pytest.mark.benchmark(group="cluster")
def test_cluster_records_match_serial(write_report):
    """Every cluster width returns records identical to SerialBackend."""
    stats = measure_scaling(n_jobs=6, dwell_s=0.02, worker_counts=(1, 2))
    write_report(
        "cluster_scaling.txt",
        "\n".join(
            [
                f"dwell grid: {stats['scaling_jobs']} jobs x "
                f"{stats['scaling_dwell_ms']} ms",
                f"1 worker: {stats['scaling_wall_1w_s']:.3f}s",
                f"2 workers: {stats['scaling_wall_2w_s']:.3f}s "
                f"({stats['scaling_speedup_2w_x']:.2f}x)",
                f"records identical: {stats['scaling_records_identical']}",
            ]
        ),
    )
    assert stats["scaling_records_identical"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small dwell grid for CI",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write the measurements as JSON (the persisted perf trajectory)",
    )
    args = parser.parse_args(argv)

    stats = run_suite(smoke=args.smoke)

    print(f"cluster scaling ({stats['scaling_jobs']} jobs x "
          f"{stats['scaling_dwell_ms']} ms dwell, spawn included):")
    for key in sorted(stats):
        if key.startswith("scaling_wall_"):
            count = key.removeprefix("scaling_wall_").removesuffix("_s")
            speedup = stats.get(f"scaling_speedup_{count}_x")
            suffix = f" ({speedup:.2f}x)" if speedup is not None else ""
            print(f"  {count}: {stats[key]:.2f}s{suffix}")
    print(f"  records identical: {stats['scaling_records_identical']}")
    print(f"work stealing ({stats['steal_jobs']} jobs, late second worker):")
    print(f"  stolen jobs: {stats['steal_stolen_jobs']}, "
          f"latency {stats['steal_latency_ms']:.2f} ms, "
          f"records identical: {stats['steal_records_identical']}")

    for flag in ("scaling_records_identical", "steal_records_identical",
                 "steals_observed"):
        if not stats[flag]:
            print(f"ERROR: {flag} is false — distribution changed behaviour")
            return 1
    print("equivalence check: cluster records are value-exact at every width")
    return_code = 0
    if not args.smoke:
        speedup = stats["scaling_speedup_4w_x"]
        if speedup < TARGET_CLUSTER_SPEEDUP:
            print(f"ERROR: 4-worker speedup {speedup:.2f}x is below the "
                  f"{TARGET_CLUSTER_SPEEDUP}x target")
            return_code = 1
        else:
            print(f"4-worker speedup {speedup:.2f}x "
                  f"(target {TARGET_CLUSTER_SPEEDUP}x)")

    if args.json:
        emit_json(stats, args.json)
    return return_code


if __name__ == "__main__":
    sys.exit(main())
