"""Shared JSON emitter for the benchmark perf trajectory.

Every benchmark that persists a ``BENCH_*.json`` payload goes through
:func:`emit_json`, so the files all share one format contract: UTF-8,
two-space indent, a trailing newline, and strict JSON (``allow_nan=False``
— a NaN ratio would silently poison :mod:`benchmarks.perf_gate`'s
comparisons, better to fail at write time).
"""

from __future__ import annotations

import json
import os


def emit_json(stats: dict, path: str) -> None:
    """Write one benchmark payload to ``path`` and announce it."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(stats, handle, indent=2, allow_nan=False)
        handle.write("\n")
    print(f"wrote {path}")
