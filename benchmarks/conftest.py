"""Shared fixtures for the benchmark harness.

Every benchmark writes its human-readable report (the reproduced table or
figure data) into ``benchmarks/results/`` so the numbers quoted in
EXPERIMENTS.md can be regenerated with a single
``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benchmark reports and figure data are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_report(results_dir):
    """Callable that writes a named text report into the results directory."""

    def _write(name: str, content: str) -> Path:
        path = results_dir / name
        path.write_text(content + "\n")
        return path

    return _write
