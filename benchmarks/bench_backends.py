"""Benchmark: execution-backend × worker-count throughput on a fixed grid.

The execution layer's contract is that backends differ *only* in wall time:
`SerialBackend`, `ProcessPoolBackend`, and `AsyncioBackend` all produce
bit-identical `CampaignResult.records` for the same grid and seed at any
worker count.  This benchmark sweeps the backend × worker matrix over one
fixed grid, checks every cell against the serial reference, and reports
throughput (jobs/s) per cell.

This file is both a pytest benchmark (like its siblings) and a standalone
script for CI smoke runs and the persisted perf trajectory::

    PYTHONPATH=src python benchmarks/bench_backends.py --smoke
    PYTHONPATH=src python benchmarks/bench_backends.py --jobs 40 --workers 1 2 4
"""

from __future__ import annotations

import argparse
import sys

import pytest
from _emit import emit_json

from repro.analysis.reporting import format_table
from repro.campaign import CampaignGrid, DeviceSpec, TuningCampaign


def build_grid(n_repeats: int, seed: int = 7) -> CampaignGrid:
    """A mixed-cost grid: cheap 63-pixel jobs next to pricier 100-pixel ones.

    The resolution axis makes the job costs heterogeneous on purpose — the
    streaming dispatch path has to keep workers busy even when one chunk is
    much more expensive than another.
    """
    return CampaignGrid(
        devices=(
            DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)),
            DeviceSpec.of("linear_array", n_dots=3),
        ),
        resolutions=(63, 100),
        noise_scales=(0.0, 1.0),
        methods=("fast",),
        n_repeats=n_repeats,
        seed=seed,
    )


def sweep(grid: CampaignGrid, worker_counts: tuple[int, ...]) -> tuple[list[dict], bool]:
    """Run the backend × worker matrix; returns per-cell rows + identical flag.

    The serial run is the reference; every other cell must match its
    records bit-for-bit (wall-clock fields excluded via ``normalized()``).
    """
    reference = TuningCampaign(grid, backend="serial").run()
    rows = [
        {
            "backend": "serial",
            "workers": 1,
            "wall_s": reference.wall_time_s,
            "jobs_per_s": reference.n_jobs / max(reference.wall_time_s, 1e-9),
            "identical": True,
        }
    ]
    all_identical = True
    for backend in ("process", "asyncio"):
        for workers in worker_counts:
            result = TuningCampaign(grid, n_workers=workers, backend=backend).run()
            identical = (
                result.normalized().records == reference.normalized().records
            )
            all_identical &= identical
            rows.append(
                {
                    "backend": backend,
                    "workers": workers,
                    "wall_s": result.wall_time_s,
                    "jobs_per_s": result.n_jobs / max(result.wall_time_s, 1e-9),
                    "identical": identical,
                }
            )
    return rows, all_identical


def format_sweep(rows: list[dict], n_jobs: int) -> str:
    """Render the sweep as the usual aligned plain-text table."""
    return format_table(
        ["Backend", "Workers", "Wall time", "Jobs/s", "Records identical"],
        [
            [
                row["backend"],
                str(row["workers"]),
                f"{row['wall_s']:.2f}s",
                f"{row['jobs_per_s']:.1f}",
                "yes" if row["identical"] else "NO",
            ]
            for row in rows
        ],
        title=f"Execution backends on a fixed {n_jobs}-job grid",
    )


@pytest.mark.benchmark(group="backends")
def test_backend_matrix_determinism(benchmark, write_report):
    """Every backend × worker cell reproduces the serial records exactly."""
    grid = build_grid(n_repeats=1)
    rows, all_identical = benchmark.pedantic(
        lambda: sweep(grid, worker_counts=(2,)), rounds=1, iterations=1
    )
    write_report("backends.txt", format_sweep(rows, grid.n_jobs))
    assert all_identical


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small grid and a single worker count for CI",
    )
    parser.add_argument("--jobs", type=int, default=24, help="approximate job count")
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[2, 4],
        help="worker counts to sweep per parallel backend",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write the measurements as JSON (the persisted perf trajectory)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        grid = build_grid(n_repeats=1)
        worker_counts: tuple[int, ...] = (2,)
    else:
        # 12 jobs per repeat (3 gate pairs x 2 resolutions x 2 noise scales).
        grid = build_grid(n_repeats=max(1, args.jobs // 12))
        worker_counts = tuple(args.workers)

    print(f"sweeping backends over a {grid.n_jobs}-job grid ...")
    rows, all_identical = sweep(grid, worker_counts)
    print()
    print(format_sweep(rows, grid.n_jobs))

    if not all_identical:
        print("ERROR: some backend produced records differing from serial")
        return 1
    print("determinism check: every backend cell matches the serial reference")

    if args.json:
        emit_json(
            {
                "bench": "backends",
                "n_jobs": grid.n_jobs,
                "worker_counts": list(worker_counts),
                "all_identical": all_identical,
                "cells": [
                    {
                        "backend": row["backend"],
                        "workers": row["workers"],
                        "wall_s": round(row["wall_s"], 4),
                        "jobs_per_s": round(row["jobs_per_s"], 2),
                        "identical": row["identical"],
                    }
                    for row in rows
                ],
            },
            args.json,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
