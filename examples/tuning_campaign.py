"""Batch-tuning campaign: tune a fleet of devices in one declarative run.

The paper demonstrates probe-efficient extraction for a single plunger-gate
pair; a production bring-up repeats that extraction across many devices,
gate pairs, and operating conditions.  This example declares a 50+-job grid
— three device variants, two resolutions, three noise amplitudes, several
repeats — fans it out over a worker pool, and prints the aggregate report:
success rate, probe totals, and the failure taxonomy of whatever went wrong.

Per-job seeds are spawned from the grid's root seed, so the campaign is
fully reproducible and gives bit-identical results at any worker count.

Run with::

    python examples/tuning_campaign.py [n_workers]
"""

from __future__ import annotations

import sys

from repro import CampaignGrid, DeviceSpec, TuningCampaign


def main() -> None:
    n_workers = int(sys.argv[1]) if len(sys.argv) > 1 else 4

    grid = CampaignGrid(
        devices=(
            DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)),
            DeviceSpec.of("double_dot", cross_coupling=(0.35, 0.30)),
            DeviceSpec.of("linear_array", n_dots=3),
        ),
        resolutions=(63, 100),
        noise_scales=(0.0, 1.0, 4.0),
        methods=("fast",),
        n_repeats=3,
        seed=2024,
    )
    # 4 gate pairs x 2 resolutions x 3 noise scales x 3 repeats = 72 jobs.
    print(f"running {grid.n_jobs} jobs on {n_workers} worker(s) ...")

    result = TuningCampaign(grid, n_workers=n_workers).run()

    print()
    print(result.format_report(max_rows=15))
    print()

    # Drill-down: how does the success rate degrade with noise?
    print("success rate by noise scale:")
    for scale in grid.noise_scales:
        records = result.records_for(noise_scale=scale)
        succeeded = sum(1 for r in records if r.success)
        print(f"  {scale:g}x lab noise: {succeeded}/{len(records)}")

    failures = result.failed_records()
    if failures:
        print()
        print("failed jobs:")
        for record in failures[:10]:
            print(f"  {record.label}: [{record.failure_category}] "
                  f"{record.failure_reason or 'ground-truth mismatch'}")


if __name__ == "__main__":
    main()
