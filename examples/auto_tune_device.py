"""Auto-tuning workflow (experimental extension): from gate ranges to virtual gates.

The paper's benchmarks start from charge-stability diagrams that were already
cropped around the lowest charge states.  This example starts one step
earlier: given only the safe plunger-gate ranges of a simulated double dot, it

1. runs the coarse transition-window search (a 24x24 scan over the full range),
2. opens a fine measurement window around the first charge transitions,
3. runs the fast virtual gate extraction inside that window,

and reports the combined probe/time budget of the whole bring-up.

Run with::

    python examples/auto_tune_device.py
"""

from __future__ import annotations

from repro import DotArrayDevice, standard_lab_noise
from repro.core import AutoTuningWorkflow
from repro.visualization import ascii_heatmap


def main() -> None:
    device = DotArrayDevice.double_dot(
        cross_coupling=(0.35, 0.30), voltage_range=(0.0, 0.06), name="uncharted-device"
    )
    workflow = AutoTuningWorkflow(resolution=100, noise=standard_lab_noise(), seed=4)
    outcome = workflow.run(device)

    search = outcome.window_search
    print("1. coarse window search")
    print(f"   coarse scan: {search.n_probes} probes, {search.elapsed_s:.1f} s simulated")
    print(f"   first-transition corner estimate: "
          f"({search.corner_voltage[0]:.4f} V, {search.corner_voltage[1]:.4f} V)")
    print(f"   estimated addition spacing: "
          f"({search.estimated_spacing[0]:.4f} V, {search.estimated_spacing[1]:.4f} V)")
    print(f"   chosen window: x = {search.x_window[0]:.4f}..{search.x_window[1]:.4f} V, "
          f"y = {search.y_window[0]:.4f}..{search.y_window[1]:.4f} V")
    print()
    print("   coarse image of the full gate range:")
    print(ascii_heatmap(search.coarse_image, max_rows=20, max_cols=40))
    print()

    extraction = outcome.extraction
    if not extraction.success:
        raise SystemExit(f"extraction failed: {extraction.failure_reason}")
    truth = device.ground_truth_alphas(0, 1, "P1", "P2")
    print("2. fast extraction inside the found window")
    print(f"   alpha_12 = {extraction.alpha_12:.4f}   (true {truth[0]:.4f})")
    print(f"   alpha_21 = {extraction.alpha_21:.4f}   (true {truth[1]:.4f})")
    print(f"   extraction probes: {extraction.probe_stats.n_probes} "
          f"({100 * extraction.probe_stats.probe_fraction:.1f}% of the fine window)")
    print()
    print("3. total bring-up budget for this gate pair")
    print(f"   probes: {outcome.total_probes}")
    print(f"   simulated time: {outcome.total_elapsed_s:.1f} s "
          f"(a single full 100x100 scan alone would take 500 s)")


if __name__ == "__main__":
    main()
