"""Distributed campaign: the same grid, serial and on a local cluster.

The cluster backend is execution policy, not content: a campaign run on
``backend="cluster:local:N"`` leases jobs over the real TCP wire protocol
to N spawn-start worker subprocesses — adaptive lease sizing, work
stealing, cache-affine placement, heartbeat-based death detection — and
still produces records **bit-identical** to the serial reference.  This
example demonstrates exactly that:

1. a serial reference run;
2. the same grid on a 2-worker local cluster, compared through
   ``normalized()`` (which pins wall clocks and strips execution policy,
   the only fields that legitimately differ);
3. the scheduling counters (`ClusterStats`) the coordinator accumulated
   while doing it.

For a real fleet, swap the spec for ``backend="cluster:HOST:PORT"`` and
start one worker per core on each machine::

    python -m repro.cluster worker --connect HOST:PORT

Run with::

    python examples/cluster_campaign.py
"""

from __future__ import annotations

from repro import CampaignGrid, DeviceSpec, TuningCampaign
from repro.cluster import ClusterBackend


def build_grid() -> CampaignGrid:
    return CampaignGrid(
        devices=(DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)),),
        resolutions=(63,),
        noise_scales=(0.0, 1.0),
        methods=("fast",),
        n_repeats=2,
        seed=7,
    )


def main() -> None:
    grid = build_grid()
    print(f"grid: {grid.n_jobs} jobs\n")

    # 1. The serial reference every backend is measured against.
    serial = TuningCampaign(grid).run()
    print(f"serial:  {serial.n_succeeded}/{serial.n_jobs} succeeded "
          f"in {serial.wall_time_s:.2f}s")

    # 2. The same grid over the cluster wire.  Passing a backend instance
    #    (instead of the "cluster:local:2" spec string) keeps a handle for
    #    reading the scheduling counters afterwards.
    backend = ClusterBackend(n_workers=2)
    cluster = TuningCampaign(grid, backend=backend).run()
    print(f"cluster: {cluster.n_succeeded}/{cluster.n_jobs} succeeded "
          f"in {cluster.wall_time_s:.2f}s "
          f"(spec {cluster.metadata['backend_spec']!r})\n")

    # Bit-identity: normalized() pins wall clocks and strips execution
    # policy; everything left — every record, every field — must be equal.
    assert cluster.normalized() == serial.normalized()
    print("cluster records are bit-identical to the serial reference\n")

    # 3. What the coordinator did to get there.
    stats = backend.last_stats
    print("coordinator counters:")
    for key, value in stats.as_dict().items():
        print(f"  {key:>20}: {value}")


if __name__ == "__main__":
    main()
