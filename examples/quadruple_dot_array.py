"""Quadruple-dot array scenario: sequential pairwise virtual gate extraction.

The paper's Figure 1 device has four plunger gates (P1..P4).  Establishing
virtual gates for the whole array takes n-1 = 3 pairwise extractions (§2.3);
this example runs them against a simulated quadruple dot, assembles the full
4x4 virtualization matrix, and reports the cost of the whole procedure.

It also uses the 1-D channel-potential substrate to confirm the chosen
plunger/barrier operating point actually forms four dots (the Figure 1(b)
picture) before any tuning is attempted.

Run with::

    python examples/quadruple_dot_array.py
"""

from __future__ import annotations

import numpy as np

from repro import ArrayVirtualGateExtractor, DotArrayDevice
from repro.physics import ChannelPotential, standard_lab_noise


def check_dot_formation() -> None:
    """Figure 1(b): four wells under the four plunger gates."""
    stack = ChannelPotential.standard_stack(n_plungers=4)
    voltages = {f"P{i}": 0.6 for i in range(1, 5)}
    voltages.update({f"B{i}": 0.4 for i in range(1, 6)})
    wells = stack.find_wells(voltages, min_confinement_mev=1.0)
    print(f"channel potential check: {len(wells)} dots formed at "
          + ", ".join(f"{w.position_nm:.0f} nm" for w in wells))
    print()


def main() -> None:
    check_dot_formation()

    device = DotArrayDevice.quadruple_dot(
        nearest_cross_fraction=0.28, next_nearest_cross_fraction=0.06
    )
    extractor = ArrayVirtualGateExtractor(
        resolution=100, noise=standard_lab_noise(), seed=2024
    )
    outcome = extractor.extract(device)

    print(f"device: {device.name} with gates {', '.join(device.gate_names)}")
    print(f"pairwise extractions run: {outcome.n_pairs}")
    for record in outcome.pair_records:
        result = record.result
        status = "ok " if result.success else "FAIL"
        extracted = (
            f"a12={result.matrix.alpha_12:.3f} a21={result.matrix.alpha_21:.3f}"
            if result.matrix is not None
            else "-"
        )
        print(
            f"  [{status}] {record.gate_x}-{record.gate_y}: {extracted}   "
            f"(true {record.true_alpha_12:.3f}/{record.true_alpha_21:.3f}), "
            f"{result.probe_stats.n_probes} probes, "
            f"{result.probe_stats.elapsed_s:.1f} s"
        )
    print()
    np.set_printoptions(precision=3, suppress=True)
    print("full 4x4 virtualization matrix (V' = M V):")
    print(outcome.virtualization.matrix)
    print()
    print(f"total probes: {outcome.total_probes}")
    print(f"total simulated runtime: {outcome.total_elapsed_s:.1f} s")
    full_scan = 0.05 * outcome.n_pairs * 100 * 100
    print(
        f"three full 100x100 scans would have taken {full_scan:.0f} s "
        f"-> {full_scan / outcome.total_elapsed_s:.1f}x faster array bring-up"
    )
    print(f"worst coefficient error vs ground truth: {outcome.max_alpha_error():.4f}")


if __name__ == "__main__":
    main()
