"""Quickstart: extract virtual gates for a simulated double quantum dot.

This is the smallest end-to-end use of the library:

1. build a double-dot device with known cross-capacitance,
2. simulate a charge-stability diagram (CSD) the way an experiment would
   record one,
3. run the paper's fast virtual gate extraction against a replay session,
4. compare the extracted virtualization matrix with the ground truth and
   report how few points (and how little simulated beam time) it needed.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CSDSimulator,
    DotArrayDevice,
    ExperimentSession,
    FastVirtualGateExtractor,
    standard_lab_noise,
)
from repro.visualization import ascii_csd


def main() -> None:
    # 1. A double dot whose plunger gates cross-couple to the other dot by
    #    ~25% / ~22% of their own lever arm - these are the numbers the
    #    extraction has to recover.
    device = DotArrayDevice.double_dot(cross_coupling=(0.25, 0.22))
    true_alpha_12, true_alpha_21 = device.ground_truth_alphas(0, 1, "P1", "P2")

    # 2. Record a 100x100 CSD with realistic measurement noise.
    simulator = CSDSimulator(device)
    csd = simulator.simulate(resolution=100, noise=standard_lab_noise(), seed=42)
    print("Simulated charge-stability diagram (sensor current, bright = empty):")
    print(ascii_csd(csd, max_rows=24, max_cols=48))
    print()

    # 3. Fast virtual gate extraction.  The session charges 50 ms of dwell
    #    time for every probed pixel, exactly like the paper's cost model.
    session = ExperimentSession.from_csd(csd)
    result = FastVirtualGateExtractor().extract(session)

    # 4. Report.
    if not result.success:
        print(f"extraction failed: {result.failure_reason}")
        return
    print("Virtualization matrix  [[1, a12], [a21, 1]]:")
    print(result.matrix.matrix)
    print()
    print(f"extracted alpha_12 = {result.matrix.alpha_12:.4f}   (true {true_alpha_12:.4f})")
    print(f"extracted alpha_21 = {result.matrix.alpha_21:.4f}   (true {true_alpha_21:.4f})")
    stats = result.probe_stats
    print(
        f"probed {stats.n_probes} of {stats.n_pixels} pixels "
        f"({100 * stats.probe_fraction:.1f}%), simulated runtime {stats.elapsed_s:.1f} s"
    )
    full_scan_s = 0.05 * stats.n_pixels
    print(f"a full scan at 50 ms/point would have taken {full_scan_s:.0f} s "
          f"-> {full_scan_s / stats.elapsed_s:.1f}x speedup")


if __name__ == "__main__":
    main()
