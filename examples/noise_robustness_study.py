"""Noise-robustness study: when does fast extraction (and the baseline) break?

The paper's two failing benchmarks are devices whose charge noise swamps the
sensor signal.  This example maps that boundary systematically: it sweeps the
noise amplitude from noiseless to hopeless on a 100x100 device and reports,
for both the fast extraction and the Canny/Hough baseline,

* the success rate over several seeds,
* the mean coefficient error of the successful runs,
* the probe fraction the fast method needed.

Run with::

    python examples/noise_robustness_study.py
"""

from __future__ import annotations

import numpy as np

from repro import ExperimentSession, FastVirtualGateExtractor, HoughBaselineExtractor
from repro.analysis import SuccessCriterion, accuracy_metrics, format_table
from repro.datasets import NoiseRecipe, SyntheticCSDConfig


NOISE_SCALES = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0)
N_SEEDS = 3
RESOLUTION = 100


def run_one(scale: float, seed: int):
    config = SyntheticCSDConfig(
        name=f"noise-study-{scale:g}-{seed}",
        resolution=RESOLUTION,
        cross_coupling=(0.26, 0.22),
        noise=NoiseRecipe(
            white_sigma_na=0.012 * scale,
            pink_sigma_na=0.015 * scale,
            drift_na=0.02 * scale,
        ),
        seed=3000 + seed,
    )
    csd = config.build_csd()
    fast = FastVirtualGateExtractor().extract(ExperimentSession.from_csd(csd))
    baseline = HoughBaselineExtractor().extract(ExperimentSession.from_csd(csd))
    return csd, fast, baseline


def main() -> None:
    criterion = SuccessCriterion()
    rows = []
    for scale in NOISE_SCALES:
        fast_success = 0
        baseline_success = 0
        fast_errors = []
        fractions = []
        for seed in range(N_SEEDS):
            csd, fast, baseline = run_one(scale, seed)
            if criterion.evaluate(fast, csd.geometry):
                fast_success += 1
                fast_errors.append(accuracy_metrics(fast, csd.geometry).max_alpha_error)
            if criterion.evaluate(baseline, csd.geometry):
                baseline_success += 1
            fractions.append(fast.probe_stats.probe_fraction)
        rows.append(
            [
                f"{scale:g}x",
                f"{fast_success}/{N_SEEDS}",
                f"{baseline_success}/{N_SEEDS}",
                f"{np.mean(fast_errors):.4f}" if fast_errors else "-",
                f"{100 * np.mean(fractions):.1f}%",
            ]
        )
    print(
        format_table(
            ["noise scale", "fast success", "baseline success", "fast |alpha err|", "fast probes"],
            rows,
            title=(
                "Noise robustness on a 100x100 double dot "
                "(1x = the suite's standard lab-noise level)"
            ),
        )
    )
    print()
    print("Interpretation: both methods hold up to several times the standard noise")
    print("level; the pathological benchmarks 1-2 of the suite sit far beyond the")
    print("breaking point, which is why the paper (and this reproduction) report")
    print("failures there for both methods.")


if __name__ == "__main__":
    main()
