"""Double-dot tuning scenario: original vs virtualized charge-stability diagram.

Reproduces the content of the paper's Figures 2 and 3 on a simulated device:

* the physical-gate CSD, whose transition lines are tilted by
  cross-capacitance,
* the same device scanned along the *virtual* gates extracted by the fast
  method, where the lines become axis-aligned ("one-to-one" control),
* a numerical check that sweeping one virtual gate changes only its own dot.

Run with::

    python examples/double_dot_tuning.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CSDSimulator,
    DotArrayDevice,
    ExperimentSession,
    FastVirtualGateExtractor,
    standard_lab_noise,
)
from repro.physics import ChargeStabilityDiagram
from repro.visualization import ascii_heatmap, side_by_side


def virtual_scan(device, matrix, window, resolution: int = 70) -> ChargeStabilityDiagram:
    """Rasterise the sensor response over a grid of *virtual* gate voltages."""
    (x_min, x_max), (y_min, y_max) = window
    xs = np.linspace(x_min, x_max, resolution)
    ys = np.linspace(y_min, y_max, resolution)
    data = np.zeros((resolution, resolution))
    for row, vy in enumerate(ys):
        for col, vx in enumerate(xs):
            physical = matrix.to_physical(np.array([vx, vy]))
            data[row, col] = device.sensor_current(physical)
    return ChargeStabilityDiagram(
        data=data, x_voltages=xs, y_voltages=ys, gate_x="P1'", gate_y="P2'"
    )


def count_unwanted_transitions(device, matrix, window, steps: int = 60) -> int:
    """Count dot-2 charge changes while sweeping only the virtual P1 gate."""
    (x_min, x_max), (y_min, y_max) = window
    vy = 0.5 * (y_min + y_max)
    unwanted = 0
    previous = None
    for vx in np.linspace(x_min, x_max, steps):
        physical = matrix.to_physical(np.array([vx, vy]))
        state = device.charge_state(physical)
        if previous is not None and state.occupations[1] != previous:
            unwanted += 1
        previous = state.occupations[1]
    return unwanted


def main() -> None:
    device = DotArrayDevice.double_dot(cross_coupling=(0.32, 0.28))
    simulator = CSDSimulator(device)
    csd = simulator.simulate(resolution=100, noise=standard_lab_noise(), seed=7)

    session = ExperimentSession.from_csd(csd)
    result = FastVirtualGateExtractor().extract(session)
    if not result.success:
        raise SystemExit(f"extraction failed: {result.failure_reason}")
    matrix = result.matrix

    # Scan the same voltage window along the virtual axes.
    window = (
        (float(csd.x_voltages[0]), float(csd.x_voltages[-1])),
        (float(csd.y_voltages[0]), float(csd.y_voltages[-1])),
    )
    virtual_csd = virtual_scan(device, matrix, window)

    physical_render = ascii_heatmap(csd.data, max_rows=26, max_cols=44)
    virtual_render = ascii_heatmap(virtual_csd.data, max_rows=26, max_cols=44)
    print(
        side_by_side(
            physical_render,
            virtual_render,
            gap=6,
            titles=("physical gates (tilted lines)", "virtual gates (axis-aligned)"),
        )
    )
    print()
    print(f"extracted alpha_12 = {matrix.alpha_12:.4f}, alpha_21 = {matrix.alpha_21:.4f}")
    truth = device.ground_truth_alphas(0, 1, "P1", "P2")
    print(f"ground truth       = {truth[0]:.4f}, {truth[1]:.4f}")
    geometry = csd.geometry
    print(
        "residual line tilt after virtualization: "
        f"{matrix.orthogonality_error(geometry.slope_steep, geometry.slope_shallow):.2f} degrees"
    )

    from repro.core import VirtualizationMatrix

    identity = VirtualizationMatrix.identity()
    print()
    print(
        "dot-2 charge changes while sweeping P1 only: "
        f"physical gates = {count_unwanted_transitions(device, identity, window)}, "
        f"virtual gates = {count_unwanted_transitions(device, matrix, window)}"
    )


if __name__ == "__main__":
    main()
