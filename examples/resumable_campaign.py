"""Interrupt-and-resume: a campaign that survives being killed mid-run.

A fleet-scale tuning campaign can run for hours; losing every finished job
to one crash (or one impatient ctrl-C) is not acceptable at production
scale.  This example runs the same grid three ways:

1. an uninterrupted reference run;
2. a checkpointed run that is deliberately killed partway through, leaving
   a JSONL journal holding a strict prefix of the records — which we then
   inspect as a *partial* result, exactly the way an operator would look at
   a dead run's journal;
3. a resume of that journal, which skips the already-completed job ids,
   runs only the remainder, and merges into a result **bit-identical** to
   the uninterrupted reference (compare through ``normalized()``, which
   pins the wall-clock fields — everything else is deterministic).

Run with::

    python examples/resumable_campaign.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import CampaignGrid, CampaignResult, DeviceSpec, TuningCampaign


class KillSwitch:
    """A progress hook that simulates the process dying after ``n`` jobs."""

    def __init__(self, after: int) -> None:
        self.after = after

    def __call__(self, done: int, total: int, record) -> None:
        print(f"  [{done}/{total}] job #{record.job_id}: {record.failure_category}")
        if done >= self.after:
            raise KeyboardInterrupt(f"simulated crash after {done} jobs")


def main() -> None:
    grid = CampaignGrid(
        devices=(
            DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)),
            DeviceSpec.of("linear_array", n_dots=3),
        ),
        resolutions=(63,),
        noise_scales=(0.0, 1.0),
        n_repeats=2,
        seed=99,
    )
    journal = Path(tempfile.mkdtemp()) / "campaign.jsonl"
    print(f"grid: {grid.n_jobs} jobs, journal: {journal}")

    # 1. The uninterrupted reference.
    reference = TuningCampaign(grid).run()

    # 2. A checkpointed run that dies partway through.
    print("\nrunning with a checkpoint, crashing after 5 jobs ...")
    try:
        TuningCampaign(grid, progress=KillSwitch(after=5)).run(checkpoint=journal)
    except KeyboardInterrupt as exc:
        print(f"  crashed: {exc}")

    # The journal survives the crash; inspect the partial result.
    partial = CampaignResult.from_journal(journal, n_expected=grid.n_jobs)
    print(
        f"\njournal holds {partial.n_jobs}/{partial.n_expected} records "
        f"(partial={partial.is_partial})"
    )

    # 3. Resume: journaled job ids are skipped, the rest runs, and the
    #    merged result equals the uninterrupted one bit-for-bit.
    print("\nresuming from the journal ...")
    resumed = TuningCampaign(
        grid,
        progress=lambda done, total, rec: print(f"  [{done}/{total}] job #{rec.job_id}"),
    ).resume(journal)

    identical = resumed.normalized() == reference.normalized()
    print(f"\nresumed result bit-identical to uninterrupted run: {identical}")
    print()
    print(resumed.format_report(max_rows=8))


if __name__ == "__main__":
    main()
