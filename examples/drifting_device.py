"""Detect-and-retune on a drifting device (scenario extension).

A virtualization matrix is only correct for the device *as it was measured*.
This example tunes a double dot inside the ``drifting_sensor`` scenario —
the charge-sensor operating point creeps 30 mV per simulated hour — then
lets the device idle and age.  After each idle period the workflow re-probes
a handful of reference pixels it already paid for (16 dwell times, versus
~400 for an extraction) and only re-extracts when the device has measurably
moved.

Run with::

    python examples/drifting_device.py
"""

from __future__ import annotations

from repro.core import AutoTuningWorkflow
from repro.scenarios import get_scenario


def main() -> None:
    scenario = get_scenario("drifting_sensor")
    print(f"scenario: {scenario.describe()}")
    print(f"          {scenario.story}")
    print()

    workflow = AutoTuningWorkflow.for_scenario(scenario, resolution=64, seed=11)
    outcome = workflow.run_with_retuning(
        scenario.build_device(),
        idle_time_s=1800.0,          # half an hour between looks
        n_cycles=3,
        staleness_threshold_na=0.08,  # ~8x the white-noise floor
        n_check_pixels=16,
    )

    initial = outcome.initial
    print("1. initial bring-up")
    print(f"   window search + extraction: {initial.total_probes} probes, "
          f"{initial.total_elapsed_s:.0f} s simulated")
    print(f"   alpha_12 = {initial.extraction.alpha_12:.4f}, "
          f"alpha_21 = {initial.extraction.alpha_21:.4f}")
    print()

    print("2. idle periods: check cheaply, retune only when stale")
    for i, cycle in enumerate(outcome.cycles, start=1):
        check = cycle.check
        verdict = "STALE -> retune" if check.stale else "fresh -> keep matrix"
        print(f"   cycle {i}: t = {check.checked_at_s:6.0f} s, "
              f"max deviation {check.max_deviation_na:.3f} nA over "
              f"{check.n_check_pixels} reference pixels "
              f"(threshold {check.threshold_na:.3f}) -> {verdict}")
        if cycle.extraction is not None:
            extraction = cycle.extraction
            if extraction.success:
                print(f"            re-extracted: alpha_12 = {extraction.alpha_12:.4f}, "
                      f"alpha_21 = {extraction.alpha_21:.4f} "
                      f"({extraction.probe_stats.n_probes} probes)")
            else:
                # A failed re-extraction is a real outcome on a degraded
                # device — the matrix stays stale until the next cycle.
                print(f"            re-extraction FAILED: {extraction.failure_reason} "
                      f"({extraction.probe_stats.n_probes} probes)")
    print()

    print("3. totals")
    print(f"   retunes: {outcome.n_retunes}/{len(outcome.cycles)} cycles")
    print(f"   probes over the whole timeline: {outcome.total_probes}")
    print(f"   final simulated age: {outcome.final_elapsed_s:.0f} s")
    print(f"   final matrix success: {outcome.final_extraction.success}")


if __name__ == "__main__":
    main()
