"""Failure mining: hunt down tuner breakage and distil it into regressions.

Hand-written test scenarios only cover the failures someone already
imagined.  This example walks the full adversarial loop the scenario-space
stack automates:

1. **Define a space** — a seeded distribution over devices (doubles up to
   2-D lattices), sensor noise, operating-point drift, and probe faults.
2. **Map the terrain** — a success-rate surface over two severity axes,
   each region annotated with a Wilson confidence interval, showing where
   the extractor starts to break.
3. **Mine adversarially** — a deterministic hill-climb stretches the
   severity axes toward the highest failure rate, harvesting every failed
   job (parameters + seed) it encounters anywhere along the search.
4. **Distil** — shrink one harvested failure to its minimal reproducing
   parameter vector: axes that don't matter go to zero, the load-bearing
   axis bisects down to the smallest value that still fails.

The distilled vector plus its recorded seed is a permanent regression test
— exactly how the ``mined_*`` entries in
:data:`repro.scenariospace.MINED_REGRESSIONS` were produced.

Run with::

    python examples/failure_mining.py
"""

from __future__ import annotations

from repro import DeviceSpec, ScenarioSpace, mine_failures, success_surface
from repro.scenariospace import Choice, LogUniform, Uniform, distill_failure
from repro.scenariospace.distill import replay_failure


def build_space() -> ScenarioSpace:
    return ScenarioSpace(
        name="demo",
        device=Choice(
            options=(
                DeviceSpec.of("double_dot"),
                DeviceSpec.of("linear_array", n_dots=6),
                DeviceSpec.of("grid_array", rows=2, cols=3),
            )
        ),
        noise_scale=LogUniform(0.5, 3.0),
        drift_mv_per_hour=Uniform(0.0, 25.0),
        fault_rate=Uniform(0.0, 0.25),
    )


def main() -> None:
    space = build_space()

    # 1. Sampling is deterministic: same space, same seed, same scenarios.
    draws = space.sample(4, seed=7)
    print(f"sampled {len(draws)} scenarios from '{space.name}':")
    for draw in draws:
        print(f"  {draw.scenario.name}: {draw.scenario.story}")
    replayed = space.sample(4, seed=7)
    assert [d.params for d in draws] == [d.params for d in replayed]
    assert [d.seed_entropy for d in draws] == [d.seed_entropy for d in replayed]

    # 2. Where does the tuner stop working?  Bin outcomes over two severity
    # axes; each region gets a Wilson 95% interval on its success rate.
    report = success_surface(
        space,
        n_draws=16,
        seed=7,
        axes=("noise_scale", "fault_rate"),
        bins=2,
        resolution=24,
    )
    print(f"\n{report.format()}")
    worst = report.worst_cell()
    print(f"worst region: {worst.n_succeeded}/{worst.n_jobs} succeeded, "
          f"95% CI [{worst.ci_low:.2f}, {worst.ci_high:.2f}]")

    # 3. Climb toward failure.  Each round stretches one severity axis up
    # or down and keeps the stress profile with the highest failure rate;
    # every failed job along the way is harvested with its exact seed.
    result = mine_failures(
        space,
        n_rounds=2,
        draws_per_round=8,
        seed=7,
        resolution=24,
        stop_at_failure_rate=0.75,
    )
    print(f"\nmined {result.n_failures} failures over {len(result.rounds)} rounds:")
    for record in result.rounds:
        stresses = ", ".join(f"{axis} x{mult:g}" for axis, mult in record.multipliers)
        marker = "accepted" if record.accepted else "rejected"
        print(f"  round {record.round_index}: {record.n_failures}/{record.n_jobs} "
              f"failed under [{stresses}] ({marker})")

    if not result.failures:
        print("no failures found — stress the space harder or mine longer")
        return

    # 4. Shrink one failure to its essence.  Axes the failure doesn't need
    # go to zero; the rest bisect down to the smallest failing severity.
    failure = result.failures[0]
    distilled = distill_failure(failure)
    print(f"\ndistilled {failure.failure_category!r} failure "
          f"(in {distilled.n_evaluations} evaluations):")
    print(f"  original: {failure.params}")
    print(f"  minimal:  {distilled.minimal}")
    if distilled.zeroed_axes():
        print(f"  irrelevant axes zeroed: {', '.join(distilled.zeroed_axes())}")

    # The contract that makes it a regression test: the minimal vector
    # still fails on the recorded seed, in any process, forever.
    record = replay_failure(
        distilled.minimal,
        failure.seed,
        method=distilled.method,
        resolution=distilled.resolution,
    )
    assert not record.success
    print("replay check: the minimal reproducer still fails on its seed")


if __name__ == "__main__":
    main()
