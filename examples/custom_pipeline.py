"""Write a custom tuning stage, register an ablation pipeline, cost it.

The tuning path is a composition of stages over a shared context
(:mod:`repro.pipeline`), so a method variant is a few lines, not a fork of
the extractor.  This example:

1. writes a custom ``Stage`` — a coarse pre-scan that widens the fit's
   anchor margin when the image looks noisy (a toy "adaptive" step, but it
   shows the whole protocol: read the context, probe through ``ctx.meter``,
   leave artifacts in ``ctx.extras``);
2. registers an ablation variant (``no-postprocess``) built from the stock
   stages plus the custom one;
3. runs the registered ``fast-extraction`` default, the stock
   ``no-anchors`` ablation, and the custom variant on the same seeded
   scenario, and prints each run's **per-stage cost table** — the telemetry
   the composer records for every stage (probes, cache hits, simulated
   seconds, wall milliseconds);
4. sweeps the variants as a campaign *method axis*, showing the same
   telemetry aggregated into the campaign report's per-stage breakdown.

Run with::

    python examples/custom_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import CampaignGrid, DeviceSpec, TuningCampaign
from repro.pipeline import (
    AnchorStage,
    FilterStage,
    FitStage,
    StageOutcome,
    SweepStage,
    TuningPipeline,
    ValidateStage,
    format_stage_costs,
    get_pipeline,
    pipeline_names,
    register_pipeline,
)
from repro.core import ExtractionConfig
from repro.scenarios import get_scenario

SCENARIO = "standard_lab"
RESOLUTION = 64
SEED = 21


class NoiseFloorProbeStage:
    """Custom stage: estimate the noise floor from a handful of probes.

    Probes a short row segment near the grid's lower-left corner (cheap:
    eight dwell times) and stores the sample standard deviation in
    ``ctx.extras["noise_floor_na"]``.  Downstream stages — or a reader of
    the telemetry — can see what the environment looks like before the
    extraction spends its budget.
    """

    name = "noise-floor"

    def run(self, ctx) -> StageOutcome:
        rows = np.full(8, 2)
        cols = np.arange(2, 10)
        currents = ctx.meter.get_currents(rows, cols)
        floor = float(np.std(np.diff(currents)))
        ctx.extras["noise_floor_na"] = floor
        ctx.metadata["noise_floor_na"] = floor
        return StageOutcome(detail=f"noise floor ~{floor:.4f} nA")


def build_custom_pipeline() -> TuningPipeline:
    """The ablation variant: noise-floor probe + no post-processing filter."""
    return TuningPipeline(
        "no-postprocess",
        [
            NoiseFloorProbeStage(),
            AnchorStage(),
            SweepStage(),
            FilterStage(apply_filter=False),
            FitStage(),
            ValidateStage(),
        ],
        default_config=ExtractionConfig.paper_defaults,
        description="Custom example: noise-floor probe, unfiltered points.",
    )


def main() -> None:
    register_pipeline("no-postprocess", build_custom_pipeline)
    print(f"registered pipelines: {', '.join(pipeline_names())}\n")

    for name in ("fast-extraction", "no-anchors", "no-postprocess"):
        session = get_scenario(SCENARIO).open_session(
            resolution=RESOLUTION, seed=SEED
        )
        result = get_pipeline(name).run(session)
        verdict = "success" if result.success else f"FAILED ({result.failure_reason})"
        print(f"== {name}: {verdict}")
        if result.metadata.get("noise_floor_na") is not None:
            print(f"   noise floor estimate: {result.metadata['noise_floor_na']:.4f} nA")
        print(format_stage_costs(result.stage_telemetry))
        print(
            f"   total: {result.probe_stats.n_probes} probes "
            f"({100.0 * result.probe_stats.probe_fraction:.1f}% of the grid), "
            f"{result.probe_stats.elapsed_s:.1f}s simulated\n"
        )

    # The variants sweep as a campaign method axis by registry name, and the
    # report's per-stage breakdown answers "where did the probes go" per
    # method.
    grid = CampaignGrid(
        devices=(DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)),),
        resolutions=(RESOLUTION,),
        noise_scales=(1.0,),
        methods=("fast", "no-anchors", "no-postprocess"),
        n_repeats=2,
        seed=SEED,
    )
    result = TuningCampaign(grid).run()
    print(result.format_report())


if __name__ == "__main__":
    main()
