"""Anatomy of one fast extraction run (the paper's Figures 4, 5, and 6).

This example instruments a single extraction on a benchmark diagram and
prints every intermediate artefact of Section 4:

* the anchor points found by the diagonal probe + mask preprocessing (§4.4),
* the transition points located by the row-major and column-major sweeps
  inside the shrinking triangle (§4.3.2, Figure 5),
* the effect of the erroneous-point filter (Figure 6),
* the fitted two-piece-wise transition-line shape and the resulting slopes
  and virtualization coefficients (§4.3.3),
* the probe map — which pixels were actually measured (Figure 7 style).

Run with::

    python examples/sweep_anatomy.py
"""

from __future__ import annotations

from repro import ExperimentSession, FastVirtualGateExtractor
from repro.datasets import load_benchmark
from repro.visualization import ascii_csd, ascii_probe_map


def main() -> None:
    csd = load_benchmark(6)
    session = ExperimentSession.from_csd(csd)
    result = FastVirtualGateExtractor().extract(session)
    if not result.success:
        raise SystemExit(f"extraction failed: {result.failure_reason}")

    anchors = result.anchors
    points = result.points
    fit = result.fit

    print(f"benchmark: {csd.metadata['name']}  ({csd.shape[0]}x{csd.shape[1]} pixels)")
    print()
    print("1. anchor preprocessing (Section 4.4)")
    print(f"   diagonal pixels probed: {len(anchors.diagonal_pixels)}")
    print(f"   starting point:         (row={anchors.start_point.row}, col={anchors.start_point.col})")
    print(f"   steep-line anchor:      (row={anchors.steep_anchor.row}, col={anchors.steep_anchor.col})")
    print(f"   shallow-line anchor:    (row={anchors.shallow_anchor.row}, col={anchors.shallow_anchor.col})")
    print()
    print("2. shrinking-triangle sweeps (Section 4.3.2)")
    row_trace, column_trace = points.row_sweep, points.column_sweep
    print(f"   row-major sweep:    {row_trace.n_points} points, "
          f"{row_trace.total_probed_segments} candidate pixels examined")
    print(f"   column-major sweep: {column_trace.n_points} points, "
          f"{column_trace.total_probed_segments} candidate pixels examined")
    print()
    print("3. erroneous-point filtering")
    print(f"   raw points:      {len(points.raw_points)}")
    print(f"   after filtering: {points.n_filtered}")
    print()
    print("   CSD with the filtered transition points overlaid as '+':")
    print(ascii_csd(csd, max_rows=28, max_cols=56, overlay_points=list(points.filtered_points)))
    print()
    print("4. slope fit (Section 4.3.3)")
    print(f"   fitted intersection: ({fit.intersection_voltage[0]:.4f} V, "
          f"{fit.intersection_voltage[1]:.4f} V)")
    print(f"   steep slope:   {fit.slope_steep:.3f}   (true {csd.geometry.slope_steep:.3f})")
    print(f"   shallow slope: {fit.slope_shallow:.3f}   (true {csd.geometry.slope_shallow:.3f})")
    print(f"   residual rms:  {fit.residual_rms:.5f} V over {fit.n_points_used} points")
    print()
    print("5. result")
    print(f"   alpha_12 = {result.matrix.alpha_12:.4f}   (true {csd.geometry.alpha_12:.4f})")
    print(f"   alpha_21 = {result.matrix.alpha_21:.4f}   (true {csd.geometry.alpha_21:.4f})")
    stats = result.probe_stats
    print(f"   probes: {stats.n_probes} / {stats.n_pixels} pixels "
          f"({100 * stats.probe_fraction:.1f}%), simulated runtime {stats.elapsed_s:.1f} s")
    print()
    print("6. probe map (Figure 7 style, 'o' = measured pixel):")
    print(
        ascii_probe_map(
            csd.shape,
            session.meter.log.probe_mask(csd.shape),
            max_rows=28,
            max_cols=56,
        )
    )


if __name__ == "__main__":
    main()
