"""Reproduce the paper's Table 1 end to end (also available as a benchmark).

Runs the fast virtual gate extraction and the Canny+Hough baseline over the
full twelve-benchmark qflow-like suite, prints the reproduced Table 1, the
per-benchmark accuracy against ground truth, and the aggregate summary that
corresponds to the paper's abstract claims (speedup range, ~10% probe
fraction, success counts).

Run with::

    python examples/reproduce_table1.py
"""

from __future__ import annotations

from repro.analysis import format_accuracy_table, run_table1


def main() -> None:
    records, report = run_table1()
    print(report)
    print()
    print(format_accuracy_table(records))


if __name__ == "__main__":
    main()
