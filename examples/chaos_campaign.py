"""Chaos campaign: tuning a device fleet while the lab misbehaves.

A real bring-up never runs against a perfect lab: readout glitches, probes
hang, sensors rail, and worker processes die.  This example runs the same
tuning grid twice — once fault-free and once with injected fault conditions
as a campaign axis — and compares the outcomes:

1. a clean reference run (the ``None`` fault rows match it bit for bit);
2. a chaos run where ``faults=`` sweeps named fault conditions from the
   fault registry: ``"flaky-lab"`` (transient read errors + probe hangs +
   dropout bursts, ridden out by the meter's retry/backoff policy) and
   ``"worker-crashes"`` (seed-chosen jobs hard-kill their worker, which the
   execution layer converts into ``worker_error`` records instead of
   aborting the campaign).

Everything is deterministic: fault draws are keyed by the probe timestamp
and the job's own spawned seed, so the same jobs fail the same way at any
worker count, on any backend — chaos runs are as reproducible (and as
resumable) as clean ones.

Run with::

    python examples/chaos_campaign.py
"""

from __future__ import annotations

from repro import CampaignGrid, DeviceSpec, TuningCampaign, fault_names


def build_grid(faults) -> CampaignGrid:
    return CampaignGrid(
        devices=(
            DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)),
            DeviceSpec.of("linear_array", n_dots=3),
        ),
        resolutions=(63,),
        noise_scales=(0.0,),
        methods=("fast",),
        faults=faults,
        n_repeats=1,
        seed=13,
    )


def main() -> None:
    print(f"registered fault conditions: {', '.join(fault_names())}\n")

    # 1. The fault-free reference.
    clean_grid = build_grid(faults=(None,))
    clean = TuningCampaign(clean_grid, n_workers=2).run()
    print(f"clean run: {clean.n_succeeded}/{clean.n_jobs} jobs succeeded\n")

    # 2. The same gate pairs, now swept across injected fault conditions.
    chaos_grid = build_grid(faults=(None, "flaky-lab", "worker-crashes"))
    print(f"chaos grid: {chaos_grid.n_jobs} jobs "
          f"({clean_grid.n_jobs} per fault condition)")
    chaos = TuningCampaign(chaos_grid, n_workers=2).run()

    # Chaos is deterministic: a serial re-run of the same grid reproduces
    # every record — values, failures, and retry counts — bit for bit
    # (``normalized()`` pins the wall-clock fields, the only
    # nondeterministic content).
    serial = TuningCampaign(chaos_grid, n_workers=1).run()
    assert serial.normalized() == chaos.normalized()
    print("determinism check: serial re-run reproduces the chaos bit for bit")

    fault_free = [r for r in chaos.records if r.fault is None]
    print(f"fault-free rows: {sum(r.success for r in fault_free)}"
          f"/{len(fault_free)} succeeded, zero retries")
    flaky = [r for r in chaos.records if r.fault == "flaky-lab"]
    crashed = [r for r in chaos.records if r.failure_category == "worker_error"]
    print(f"flaky-lab rows: {sum(r.success for r in flaky)}/{len(flaky)} "
          f"succeeded through {sum(r.n_probe_retries for r in flaky)} probe retries")
    print(f"worker crashes survived as records: {len(crashed)} "
          f"(campaign still completed all {chaos.n_jobs} jobs)\n")

    # The report grows a "Fault resilience" section whenever fault
    # conditions (or probe retries) appear in the records.
    print(chaos.format_report(max_rows=12))


if __name__ == "__main__":
    main()
