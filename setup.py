"""Setuptools entry point.

The project is fully described by ``pyproject.toml``; this file exists so that
the package can also be installed in minimal offline environments that lack
the ``wheel`` package required for PEP 660 editable installs
(``python setup.py develop`` as a fallback for ``pip install -e .``).
"""

from setuptools import setup

setup()
